//! Transports and the tenant-routed serving core.
//!
//! [`ServeBuilder`] assembles an [`EstimationService`] out of
//! [`TenantSpec`]s: each tenant is one namespace with its **own** graph,
//! estimator behind a swappable [`ModelHandle`], micro-batcher (workers +
//! bounded admission queue), [`ServeStats`], and optional workload monitor.
//! Batches are keyed by tenant *by construction* — every tenant owns its
//! batcher, so one `estimate_batch` forward can never mix models — and a
//! tenant's admission quota is its queue depth: a tenant at quota sheds its
//! own requests with `OVERLOADED` without starving anyone else.
//!
//! [`EstimationService::handle_line`] is the whole per-line state machine —
//! parse, route to the addressed tenant (v1 lines go to the `default`
//! namespace), admit (or shed), or answer control requests directly.
//! [`serve_stream`] runs a session over any `BufRead`/`Write` pair (the pipe
//! mode is exactly `stdin`/`stdout`), and [`serve_tcp`] accepts connections
//! and runs one session thread per client over the same code path, so both
//! modes behave identically by construction.

use crate::batcher::{BatchConfig, Job, MicroBatcher, ModelHandle, ServeStats, SharedEstimator, SharedMonitor};
use crate::latency::StatsSnapshot;
use crate::protocol::{ErrorCode, Reply, Request, DEFAULT_TENANT};
use lmkg_store::{sparql, KnowledgeGraph};
use std::collections::HashMap;
use std::fmt;
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::Duration;

/// What [`EstimationService::handle_line`] decided about the session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineOutcome {
    /// Keep reading lines.
    Continue,
    /// The client asked to end the session (`QUIT`).
    Quit,
}

/// One namespace of a multi-tenant server: a graph, the estimator serving
/// it, and the tenant's isolation knobs.
pub struct TenantSpec {
    /// The namespace token requests address this tenant by.
    pub name: String,
    /// The graph this tenant's queries resolve against.
    pub graph: Arc<KnowledgeGraph>,
    /// The tenant's frozen, `Arc`-shared estimator.
    pub estimator: SharedEstimator,
    /// Observation feed of this tenant's adaptation loop, if any.
    pub monitor: Option<SharedMonitor>,
    /// Admission quota: overrides [`BatchConfig::queue_depth`] for this
    /// tenant. `Some(0)` suspends the namespace — estimates are refused
    /// with `ERR code=quota` instead of queued.
    pub quota: Option<usize>,
    /// The tenant's model-store directory. The service itself never touches
    /// it — the lifecycle wiring (the `serve` binary's cold-start path and
    /// the adapter's persist-after-swap) reads it through
    /// [`EstimationService::tenant_model_dir`], so the directory travels
    /// with the tenant instead of a side channel.
    pub model_dir: Option<std::path::PathBuf>,
    /// Memory budget in bytes for this tenant's model set. `None` means
    /// unbounded; the adapter's eviction pass reads it through
    /// [`EstimationService::tenant_memory_budget`].
    pub memory_budget: Option<usize>,
}

impl TenantSpec {
    /// A tenant with the builder-wide batch configuration and no monitor.
    pub fn new(name: impl Into<String>, graph: Arc<KnowledgeGraph>, estimator: SharedEstimator) -> Self {
        Self {
            name: name.into(),
            graph,
            estimator,
            monitor: None,
            quota: None,
            model_dir: None,
            memory_budget: None,
        }
    }

    /// Record admitted queries into `monitor` (the adaptation feed).
    pub fn observed(mut self, monitor: SharedMonitor) -> Self {
        self.monitor = Some(monitor);
        self
    }

    /// Cap this tenant's admission queue at `quota` jobs (0 = suspended).
    pub fn quota(mut self, quota: usize) -> Self {
        self.quota = Some(quota);
        self
    }

    /// Persist this tenant's model set under `dir` (a
    /// `lmkg-modelstore`-managed directory of checksummed generations).
    pub fn model_dir(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.model_dir = Some(dir.into());
        self
    }

    /// Evict least-used models when the tenant's set exceeds `bytes`.
    pub fn memory_budget(mut self, bytes: usize) -> Self {
        self.memory_budget = Some(bytes);
        self
    }
}

/// Why [`ServeBuilder::build`] refused a configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// The builder had no tenants at all.
    NoTenants,
    /// Two tenants claimed the same namespace token.
    DuplicateTenant(String),
    /// A tenant name is empty, contains whitespace, or is the reserved
    /// token `SELECT` (which would make `EST` lines ambiguous — the
    /// protocol disambiguates v1/v2 by the leading query keyword).
    InvalidTenantName(String),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::NoTenants => write!(f, "a service needs at least one tenant"),
            BuildError::DuplicateTenant(name) => write!(f, "duplicate tenant name {name:?}"),
            BuildError::InvalidTenantName(name) => write!(
                f,
                "invalid tenant name {name:?} (must be non-empty, whitespace-free, and not \"SELECT\")"
            ),
        }
    }
}

impl std::error::Error for BuildError {}

/// The one way to construct an [`EstimationService`]: collect tenants, set
/// the shared batch configuration, build. Replaces the old constructor zoo
/// (`new` vs `new_observed` with positional config threading), which now
/// delegates here.
///
/// ```
/// # use lmkg::GraphSummary;
/// # use lmkg_serve::{BatchConfig, ServeBuilder, TenantSpec};
/// # use lmkg_store::GraphBuilder;
/// # use std::sync::Arc;
/// # let mut b = GraphBuilder::new();
/// # b.add(":a", ":p", ":b");
/// # let graph = Arc::new(b.build());
/// # let summary: lmkg_serve::SharedEstimator = Arc::new(GraphSummary::build(&graph));
/// let svc = ServeBuilder::new()
///     .batch(BatchConfig::default())
///     .tenant(TenantSpec::new("lubm", Arc::clone(&graph), Arc::clone(&summary)))
///     .tenant(TenantSpec::new("swdf", graph, summary).quota(64))
///     .build()
///     .unwrap();
/// assert_eq!(svc.tenant_names(), ["lubm", "swdf"]);
/// ```
#[derive(Default)]
pub struct ServeBuilder {
    batch: BatchConfig,
    tenants: Vec<TenantSpec>,
}

impl ServeBuilder {
    /// An empty builder with the default [`BatchConfig`].
    pub fn new() -> Self {
        Self::default()
    }

    /// The batch configuration every tenant's batcher starts from (a
    /// tenant's `quota` overrides its queue depth).
    pub fn batch(mut self, cfg: BatchConfig) -> Self {
        self.batch = cfg;
        self
    }

    /// Adds one tenant namespace.
    pub fn tenant(mut self, spec: TenantSpec) -> Self {
        self.tenants.push(spec);
        self
    }

    /// Validates the tenant set and starts every tenant's batcher workers.
    pub fn build(self) -> Result<EstimationService, BuildError> {
        if self.tenants.is_empty() {
            return Err(BuildError::NoTenants);
        }
        let mut index = HashMap::with_capacity(self.tenants.len());
        for (i, spec) in self.tenants.iter().enumerate() {
            if spec.name.is_empty() || spec.name.contains(char::is_whitespace) || spec.name == "SELECT" {
                return Err(BuildError::InvalidTenantName(spec.name.clone()));
            }
            if index.insert(spec.name.clone(), i).is_some() {
                return Err(BuildError::DuplicateTenant(spec.name.clone()));
            }
        }
        // v1 lines (no tenant token) route to the `default` namespace; a
        // single-tenant service is its own default whatever its name, so
        // pre-v2 clients work against it unchanged.
        let default_idx = match index.get(DEFAULT_TENANT) {
            Some(&i) => Some(i),
            None if self.tenants.len() == 1 => Some(0),
            None => None,
        };
        let batch = self.batch;
        let tenants: Vec<TenantEntry> = self
            .tenants
            .into_iter()
            .map(|spec| {
                let suspended = spec.quota == Some(0);
                let cfg = BatchConfig {
                    // A suspended tenant still gets a (never-fed) batcher:
                    // its stats surface stays live for STATS/METRICS.
                    queue_depth: spec.quota.filter(|&q| q > 0).unwrap_or(batch.queue_depth),
                    ..batch.clone()
                };
                TenantEntry {
                    name: spec.name,
                    graph: spec.graph,
                    batcher: MicroBatcher::start_observed(spec.estimator, cfg, spec.monitor),
                    suspended,
                    model_dir: spec.model_dir,
                    memory_budget: spec.memory_budget,
                }
            })
            .collect();
        Ok(EstimationService {
            tenants,
            index,
            default_idx,
        })
    }
}

/// One running tenant: its graph plus its private batcher (workers, queue,
/// stats, model handle).
struct TenantEntry {
    name: String,
    graph: Arc<KnowledgeGraph>,
    batcher: MicroBatcher,
    suspended: bool,
    model_dir: Option<std::path::PathBuf>,
    memory_budget: Option<usize>,
}

/// The serving core shared by every transport: parses request lines, routes
/// them to the addressed tenant, and feeds that tenant's micro-batcher.
pub struct EstimationService {
    tenants: Vec<TenantEntry>,
    index: HashMap<String, usize>,
    /// Where v1 lines (no tenant token) route: the tenant named `default`,
    /// or the only tenant of a single-tenant service. `None` on a
    /// multi-tenant service without a `default` namespace — v1 lines are
    /// then refused with `ERR code=unknown-tenant`.
    default_idx: Option<usize>,
}

impl fmt::Debug for EstimationService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EstimationService")
            .field("tenants", &self.tenant_names())
            .field("default", &self.default_idx.map(|i| self.tenants[i].name.as_str()))
            .finish()
    }
}

impl EstimationService {
    /// Builds a single-tenant service around the `default` namespace.
    #[deprecated(note = "use ServeBuilder with a TenantSpec instead")]
    pub fn new(graph: Arc<KnowledgeGraph>, estimator: SharedEstimator, cfg: BatchConfig) -> Self {
        ServeBuilder::new()
            .batch(cfg)
            .tenant(TenantSpec::new(DEFAULT_TENANT, graph, estimator))
            .build()
            .expect("a single default tenant always builds")
    }

    /// Builds a single-tenant service whose admitted queries are recorded
    /// into `monitor`.
    #[deprecated(note = "use ServeBuilder with TenantSpec::observed instead")]
    pub fn new_observed(
        graph: Arc<KnowledgeGraph>,
        estimator: SharedEstimator,
        cfg: BatchConfig,
        monitor: Option<SharedMonitor>,
    ) -> Self {
        let mut spec = TenantSpec::new(DEFAULT_TENANT, graph, estimator);
        if let Some(monitor) = monitor {
            spec = spec.observed(monitor);
        }
        ServeBuilder::new()
            .batch(cfg)
            .tenant(spec)
            .build()
            .expect("a single default tenant always builds")
    }

    /// The entry v1 lines route to, falling back to the first tenant for
    /// transport-level accounting (sessions, bytes, malformed lines carry
    /// no tenant token to attribute them better).
    fn accounting_entry(&self) -> &TenantEntry {
        &self.tenants[self.default_idx.unwrap_or(0)]
    }

    // The Err side carries a ready-to-send Reply; it is built once per
    // unknown-tenant line, never on the per-request hot path.
    #[allow(clippy::result_large_err)]
    fn resolve(&self, tenant: Option<&str>) -> Result<&TenantEntry, Reply> {
        let idx = match tenant {
            Some(name) => self.index.get(name).copied(),
            None => self.default_idx,
        };
        idx.map(|i| &self.tenants[i]).ok_or_else(|| {
            let mut names = self.tenant_names();
            names.truncate(8);
            Reply::error(
                "-",
                ErrorCode::UnknownTenant,
                match tenant {
                    Some(name) => format!("unknown tenant {:?} (serving: {})", name, names.join(", ")),
                    None => format!("no default tenant on this server; address one of: {}", names.join(", ")),
                },
            )
        })
    }

    /// The served namespaces, sorted ascending (the `TENANTS` reply body).
    pub fn tenant_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tenants.iter().map(|t| t.name.clone()).collect();
        names.sort();
        names
    }

    /// One tenant's point-in-time serving summary.
    pub fn tenant_stats(&self, name: &str) -> Option<StatsSnapshot> {
        self.index
            .get(name)
            .map(|&i| self.tenants[i].batcher.stats().snapshot())
    }

    /// One tenant's live counter block.
    pub fn tenant_serve_stats(&self, name: &str) -> Option<Arc<ServeStats>> {
        self.index.get(name).map(|&i| self.tenants[i].batcher.stats())
    }

    /// One tenant's swappable model slot.
    pub fn tenant_model(&self, name: &str) -> Option<Arc<ModelHandle>> {
        self.index.get(name).map(|&i| self.tenants[i].batcher.model())
    }

    /// One tenant's graph.
    pub fn tenant_graph(&self, name: &str) -> Option<Arc<KnowledgeGraph>> {
        self.index.get(name).map(|&i| Arc::clone(&self.tenants[i].graph))
    }

    /// One tenant's model-store directory, if it persists snapshots.
    pub fn tenant_model_dir(&self, name: &str) -> Option<std::path::PathBuf> {
        self.index.get(name).and_then(|&i| self.tenants[i].model_dir.clone())
    }

    /// One tenant's model memory budget in bytes, if bounded.
    pub fn tenant_memory_budget(&self, name: &str) -> Option<usize> {
        self.index.get(name).and_then(|&i| self.tenants[i].memory_budget)
    }

    /// The default tenant's graph (see [`EstimationService::accounting_entry`]).
    pub fn graph(&self) -> &KnowledgeGraph {
        &self.accounting_entry().graph
    }

    /// The default tenant's point-in-time serving summary (the `STATS`
    /// reply body of a v1 `STATS` line).
    pub fn stats(&self) -> StatsSnapshot {
        self.accounting_entry().batcher.stats().snapshot()
    }

    /// The default tenant's live counter block (shared with its adapter,
    /// which records drift evaluations and retrain events into it). Also
    /// where transport-level accounting (sessions, bytes, malformed lines)
    /// lands — those carry no tenant token.
    pub fn serve_stats(&self) -> Arc<ServeStats> {
        self.accounting_entry().batcher.stats()
    }

    /// The default tenant's swappable model slot — the seam a retraining
    /// loop publishes new models through, atomically, under live traffic.
    pub fn model(&self) -> Arc<ModelHandle> {
        self.accounting_entry().batcher.model()
    }

    /// Shuts every tenant's batcher down and hands the default tenant's
    /// estimator back.
    pub fn into_estimator(self) -> SharedEstimator {
        let default_idx = self.default_idx.unwrap_or(0);
        let mut result = None;
        for (i, tenant) in self.tenants.into_iter().enumerate() {
            let estimator = tenant.batcher.shutdown();
            // Keep the first estimator as a fallback so this never
            // panics: `ServeBuilder::build` rejects zero tenants, and the
            // default (when set) overwrites the fallback on its turn.
            if i == default_idx || result.is_none() {
                result = Some(estimator);
            }
        }
        match result {
            Some(estimator) => estimator,
            // Unreachable by the builder invariant; a zero-tenant service
            // has no model to hand back, so fail the caller loudly with a
            // typed message rather than a bare unwrap.
            None => unreachable!("ServeBuilder::build rejects zero tenants"),
        }
    }

    /// Processes one raw input line. Estimate replies arrive on `out`
    /// asynchronously (from the addressed tenant's batcher workers); error,
    /// overload, stats, and tenant-listing replies are sent on `out` before
    /// this returns. Blank lines and `#` comments are ignored.
    pub fn handle_line(&self, line: &str, out: &mpsc::Sender<Reply>) -> LineOutcome {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            return LineOutcome::Continue;
        }
        let request = match Request::parse(line) {
            Ok(request) => request,
            Err(e) => {
                self.accounting_entry().batcher.stats().note_parse_error(&e.message);
                let _ = out.send(Reply::error("-", ErrorCode::Parse, e.message));
                return LineOutcome::Continue;
            }
        };
        match request {
            Request::Quit => LineOutcome::Quit,
            Request::Tenants { id } => {
                let _ = out.send(Reply::Tenants {
                    id,
                    names: self.tenant_names(),
                });
                LineOutcome::Continue
            }
            Request::Stats { tenant, id } => {
                match self.resolve(tenant.as_deref()) {
                    Ok(entry) => {
                        let _ = out.send(Reply::Stats {
                            id,
                            snapshot: entry.batcher.stats().snapshot(),
                        });
                    }
                    Err(reply) => {
                        let _ = out.send(with_id(reply, id));
                    }
                }
                LineOutcome::Continue
            }
            Request::Metrics { tenant, id } => {
                // The exposition carries a tenant="…" label exactly when the
                // request addressed a namespace explicitly; a v1 line gets
                // the v1 (unlabeled) exposition, byte-compatible with pre-v2
                // scrapers.
                let label = tenant.as_deref();
                match self.resolve(label) {
                    Ok(entry) => {
                        let _ = out.send(Reply::Metrics {
                            id,
                            text: crate::expose::render_metrics_for(label, &entry.batcher.stats()),
                        });
                    }
                    Err(reply) => {
                        let _ = out.send(with_id(reply, id));
                    }
                }
                LineOutcome::Continue
            }
            Request::Estimate { tenant, id, sparql } => {
                let entry = match self.resolve(tenant.as_deref()) {
                    Ok(entry) => entry,
                    Err(reply) => {
                        let _ = out.send(with_id(reply, id));
                        return LineOutcome::Continue;
                    }
                };
                if entry.suspended {
                    let _ = out.send(Reply::error(
                        id,
                        ErrorCode::Quota,
                        format!("tenant {:?} is suspended (quota 0)", entry.name),
                    ));
                    return LineOutcome::Continue;
                }
                match sparql::parse(&sparql, &entry.graph) {
                    Ok(parsed) => {
                        let job = Job::new(id, parsed.query, out.clone());
                        if let Err(job) = entry.batcher.submit(job) {
                            let _ = out.send(Reply::Overloaded {
                                id: job.id,
                                depth: entry.batcher.queue_depth(),
                            });
                        }
                    }
                    Err(e) => {
                        let _ = out.send(Reply::error(id, ErrorCode::Parse, e.message));
                    }
                }
                LineOutcome::Continue
            }
        }
    }
}

/// Re-addresses a placeholder-id error reply to the request's real id.
fn with_id(reply: Reply, id: String) -> Reply {
    match reply {
        Reply::Error { code, message, .. } => Reply::Error { id, code, message },
        other => other,
    }
}

/// Runs one session: reads request lines from `reader` until EOF or `QUIT`,
/// writes reply lines to `writer` as they complete (a writer thread drains
/// the reply channel, so slow clients never block the batcher workers).
/// Returns the writer once every admitted request has been answered — tests
/// recover their output buffer through it.
pub fn serve_stream<R, W>(svc: &EstimationService, reader: R, writer: W) -> W
where
    R: BufRead,
    W: Write + Send + 'static,
{
    let stats = svc.serve_stats();
    stats.note_session_start();
    let (tx, rx) = mpsc::channel::<Reply>();
    let writer_thread = std::thread::Builder::new()
        .name("lmkg-serve-writer".into())
        .spawn({
            let stats = Arc::clone(&stats);
            move || {
                let mut writer = writer;
                for reply in rx {
                    // Line-buffered on purpose: each reply is flushed so an
                    // interactive client sees it immediately.
                    let line = reply.to_string();
                    let sent = writer
                        .write_all(line.as_bytes())
                        .and_then(|()| writer.write_all(b"\n"))
                        .and_then(|()| writer.flush());
                    if sent.is_err() {
                        break; // client hung up; drain silently
                    }
                    stats.bytes_out.add(line.len() as u64 + 1);
                }
                writer
            }
        })
        .expect("spawn writer thread");

    for line in reader.lines() {
        let line = match line {
            Ok(line) => line,
            // The bytes up to the newline are already consumed, so a
            // non-UTF-8 line is just one malformed request — reply ERR and
            // keep the session alive, like any other garbage input.
            Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
                stats.note_parse_error("request line is not valid UTF-8");
                let _ = tx.send(Reply::error("-", ErrorCode::Parse, "request line is not valid UTF-8"));
                continue;
            }
            Err(_) => break, // transport failure: end the session
        };
        stats.bytes_in.add(line.len() as u64 + 1);
        if svc.handle_line(&line, &tx) == LineOutcome::Quit {
            break;
        }
    }
    // Close our sender; in-flight jobs hold clones, so the writer exits
    // exactly when the last outstanding reply has been written.
    drop(tx);
    let writer = writer_thread.join().expect("writer thread panicked");
    stats.note_session_end();
    writer
}

/// A cloneable signal that asks the TCP accept loop to shut down
/// gracefully. The `serve` binary wires it to SIGINT/SIGTERM; tests trigger
/// it directly.
#[derive(Debug, Clone, Default)]
pub struct ShutdownFlag(Arc<AtomicBool>);

impl ShutdownFlag {
    /// A fresh, untriggered flag.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests shutdown. Idempotent; safe from any thread (the `serve`
    /// binary's signal watcher calls it).
    pub fn trigger(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// Whether shutdown has been requested.
    pub fn is_triggered(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

/// How often the accept loop polls for new connections, finished sessions,
/// and the shutdown flag.
const ACCEPT_POLL: Duration = Duration::from_millis(25);

/// Accepts TCP connections and serves each on its own thread. With
/// `max_conns = Some(n)` the accept loop returns after `n` connections
/// (tests use 1); `None` accepts until `shutdown` triggers.
///
/// Shutdown is graceful: once `shutdown` fires, no new connection is
/// accepted and every live session's read half is closed
/// (`Shutdown::Read`), which reads like a client EOF — the session stops
/// taking requests, every already-admitted job still gets its reply written,
/// and the session thread exits. The loop joins all session threads before
/// returning, so when this function is back the caller can run
/// `Batcher::shutdown` (drop the service) and join the adapter without
/// killing anything mid-swap.
pub fn serve_tcp(
    svc: &Arc<EstimationService>,
    listener: TcpListener,
    max_conns: Option<usize>,
    shutdown: &ShutdownFlag,
) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    let mut sessions: Vec<(JoinHandle<()>, TcpStream)> = Vec::new();
    let mut accepted = 0usize;
    let mut fatal: Option<std::io::Error> = None;
    loop {
        if shutdown.is_triggered() {
            break;
        }
        // Reap sessions that ended on their own (QUIT / EOF) on every
        // iteration — not just when idle — so sustained connection churn
        // cannot accumulate dead handles and their control fds unboundedly.
        sessions.retain(|(handle, _)| !handle.is_finished());
        match listener.accept() {
            Ok((stream, _)) => {
                // The listener is non-blocking so the loop can watch the
                // flag; sessions themselves block on reads as before.
                if let Err(e) = stream.set_nonblocking(false) {
                    // Same contract as any other fatal accept-loop error:
                    // drain live sessions below, then propagate.
                    fatal = Some(e);
                    break;
                }
                let _ = stream.set_nodelay(true); // one-line replies; don't batch in the kernel
                let control = stream.try_clone();
                let session_svc = Arc::clone(svc);
                let spawned = std::thread::Builder::new()
                    .name("lmkg-serve-session".into())
                    .spawn(move || {
                        let reader = match stream.try_clone() {
                            Ok(read_half) => BufReader::new(read_half),
                            Err(_) => return,
                        };
                        serve_stream(&session_svc, reader, stream);
                    });
                let handle = match spawned {
                    Ok(handle) => handle,
                    Err(e) => {
                        // Thread exhaustion must not kill the accept loop:
                        // dropping the closure closes this one connection
                        // (the stream moved into it), every live session
                        // keeps running, and the next accept retries.
                        if let Ok(control) = &control {
                            let _ = control.shutdown(Shutdown::Both);
                        }
                        svc.serve_stats().event(
                            lmkg_obs::Level::Warn,
                            "session",
                            format!("refused: cannot spawn session thread: {e}"),
                        );
                        continue;
                    }
                };
                match control {
                    // Keep a handle on the socket so shutdown can drain it.
                    Ok(control) => sessions.push((handle, control)),
                    Err(_) => drop(handle), // session still runs; just not drainable early
                }
                accepted += 1;
                if max_conns.is_some_and(|max| accepted >= max) {
                    break;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            // A connection that died between arriving and being accepted is
            // the peer's problem, not the listener's.
            Err(e) if e.kind() == std::io::ErrorKind::ConnectionAborted => continue,
            // Anything else (EMFILE, a dead listener, …) is fatal for the
            // accept loop — but live sessions still drain below before the
            // error propagates, exactly as on a shutdown signal.
            Err(e) => {
                fatal = Some(e);
                break;
            }
        }
    }
    if shutdown.is_triggered() || fatal.is_some() {
        for (_, stream) in &sessions {
            // EOF the request side; in-flight replies still flush.
            let _ = stream.shutdown(Shutdown::Read);
        }
    }
    for (handle, _) in sessions {
        let _ = handle.join();
    }
    match fatal {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmkg::GraphSummary;
    use lmkg_store::GraphBuilder;

    fn book_graph() -> Arc<KnowledgeGraph> {
        let mut b = GraphBuilder::new();
        b.add(":shining", ":hasAuthor", ":StephenKing");
        b.add(":it", ":hasAuthor", ":StephenKing");
        b.add(":StephenKing", ":bornIn", ":USA");
        Arc::new(b.build())
    }

    fn service(cfg: BatchConfig) -> EstimationService {
        let graph = book_graph();
        let summary = GraphSummary::build(&graph);
        ServeBuilder::new()
            .batch(cfg)
            .tenant(TenantSpec::new(DEFAULT_TENANT, graph, Arc::new(summary)))
            .build()
            .unwrap()
    }

    /// A second graph with a disjoint vocabulary, so routing mix-ups
    /// surface as unknown-term errors instead of silently wrong numbers.
    fn city_graph() -> Arc<KnowledgeGraph> {
        let mut b = GraphBuilder::new();
        b.add(":berlin", ":locatedIn", ":germany");
        b.add(":munich", ":locatedIn", ":germany");
        Arc::new(b.build())
    }

    fn two_tenant_service(cfg: BatchConfig) -> EstimationService {
        let books = book_graph();
        let cities = city_graph();
        let books_est: SharedEstimator = Arc::new(GraphSummary::build(&books));
        let cities_est: SharedEstimator = Arc::new(GraphSummary::build(&cities));
        ServeBuilder::new()
            .batch(cfg)
            .tenant(TenantSpec::new("books", books, books_est))
            .tenant(TenantSpec::new("cities", cities, cities_est))
            .build()
            .unwrap()
    }

    #[test]
    fn handle_line_answers_estimates_errors_and_stats() {
        let svc = service(BatchConfig::default().per_request());
        let (tx, rx) = mpsc::channel();

        // Blank lines and comments are ignored without replies.
        assert_eq!(svc.handle_line("", &tx), LineOutcome::Continue);
        assert_eq!(svc.handle_line("   # warmup file header", &tx), LineOutcome::Continue);

        svc.handle_line("EST q1 SELECT * WHERE { ?x :hasAuthor ?y . }", &tx);
        match rx.recv_timeout(std::time::Duration::from_secs(5)).unwrap() {
            Reply::Estimate { id, estimate, .. } => {
                assert_eq!(id, "q1");
                assert!(estimate >= 1.0);
            }
            other => panic!("expected an estimate, got {other:?}"),
        }

        // Unknown term → structured ERR carrying the request id and the
        // parse code.
        svc.handle_line("EST q2 SELECT * WHERE { ?x :hasAuthor :Nobody . }", &tx);
        match rx.recv().unwrap() {
            Reply::Error { id, code, message } => {
                assert_eq!(id, "q2");
                assert_eq!(code, Some(ErrorCode::Parse));
                assert!(message.contains("unknown node term"));
            }
            other => panic!("expected ERR, got {other:?}"),
        }

        // Malformed line → ERR with the placeholder id.
        svc.handle_line("ESTIMATE q3 whatever", &tx);
        match rx.recv().unwrap() {
            Reply::Error { id, code, .. } => {
                assert_eq!(id, "-");
                assert_eq!(code, Some(ErrorCode::Parse));
            }
            other => panic!("expected ERR, got {other:?}"),
        }

        svc.handle_line("STATS s1", &tx);
        match rx.recv().unwrap() {
            Reply::Stats { id, snapshot } => {
                assert_eq!(id, "s1");
                assert_eq!(snapshot.served, 1);
            }
            other => panic!("expected STATS, got {other:?}"),
        }

        assert_eq!(svc.handle_line("QUIT", &tx), LineOutcome::Quit);
    }

    #[test]
    fn tenant_routing_resolves_terms_per_namespace() {
        let svc = two_tenant_service(BatchConfig::default().per_request());
        let (tx, rx) = mpsc::channel();

        // Each tenant resolves its own vocabulary …
        svc.handle_line("EST books q1 SELECT * WHERE { ?x :hasAuthor ?y . }", &tx);
        match rx.recv_timeout(Duration::from_secs(5)).unwrap() {
            Reply::Estimate { id, estimate, .. } => {
                assert_eq!(id, "q1");
                assert!(estimate >= 1.0);
            }
            other => panic!("expected an estimate, got {other:?}"),
        }
        svc.handle_line("EST cities q2 SELECT * WHERE { ?x :locatedIn :germany . }", &tx);
        match rx.recv_timeout(Duration::from_secs(5)).unwrap() {
            Reply::Estimate { id, .. } => assert_eq!(id, "q2"),
            other => panic!("expected an estimate, got {other:?}"),
        }

        // … and a query routed to the wrong tenant fails term resolution.
        svc.handle_line("EST cities q3 SELECT * WHERE { ?x :hasAuthor ?y . }", &tx);
        match rx.recv().unwrap() {
            Reply::Error { id, code, .. } => {
                assert_eq!(id, "q3");
                assert_eq!(code, Some(ErrorCode::Parse));
            }
            other => panic!("expected ERR, got {other:?}"),
        }

        // Unknown namespaces are a structured error naming the live ones.
        svc.handle_line("EST nope q4 SELECT * WHERE { ?x :p ?y . }", &tx);
        match rx.recv().unwrap() {
            Reply::Error { id, code, message } => {
                assert_eq!(id, "q4");
                assert_eq!(code, Some(ErrorCode::UnknownTenant));
                assert!(message.contains("books") && message.contains("cities"), "{message}");
            }
            other => panic!("expected ERR, got {other:?}"),
        }

        // Two tenants, neither named `default`: v1 lines have no home.
        svc.handle_line("EST q5 SELECT * WHERE { ?x :hasAuthor ?y . }", &tx);
        match rx.recv().unwrap() {
            Reply::Error { id, code, message } => {
                assert_eq!(id, "q5");
                assert_eq!(code, Some(ErrorCode::UnknownTenant));
                assert!(message.contains("no default tenant"), "{message}");
            }
            other => panic!("expected ERR, got {other:?}"),
        }

        // TENANTS lists both, sorted.
        svc.handle_line("TENANTS t0", &tx);
        match rx.recv().unwrap() {
            Reply::Tenants { id, names } => {
                assert_eq!(id, "t0");
                assert_eq!(names, ["books", "cities"]);
            }
            other => panic!("expected TENANTS, got {other:?}"),
        }

        // Per-tenant STATS count independently.
        svc.handle_line("STATS books sb", &tx);
        svc.handle_line("STATS cities sc", &tx);
        for (expected_id, expected_served) in [("sb", 1), ("sc", 1)] {
            match rx.recv().unwrap() {
                Reply::Stats { id, snapshot } => {
                    assert_eq!(id, expected_id);
                    assert_eq!(snapshot.served, expected_served);
                }
                other => panic!("expected STATS, got {other:?}"),
            }
        }
    }

    #[test]
    fn single_tenant_service_is_its_own_default_whatever_its_name() {
        let graph = book_graph();
        let est: SharedEstimator = Arc::new(GraphSummary::build(&graph));
        let svc = ServeBuilder::new()
            .batch(BatchConfig::default().per_request())
            .tenant(TenantSpec::new("lubm", graph, est))
            .build()
            .unwrap();
        let (tx, rx) = mpsc::channel();
        // A v1 line routes to the only tenant even though it is not named
        // `default` — pre-v2 clients keep working against any single-tenant
        // server.
        svc.handle_line("EST q1 SELECT * WHERE { ?x :hasAuthor ?y . }", &tx);
        match rx.recv_timeout(Duration::from_secs(5)).unwrap() {
            Reply::Estimate { id, .. } => assert_eq!(id, "q1"),
            other => panic!("expected an estimate, got {other:?}"),
        }
    }

    #[test]
    fn suspended_tenant_refuses_with_quota_code() {
        let graph = book_graph();
        let est: SharedEstimator = Arc::new(GraphSummary::build(&graph));
        let svc = ServeBuilder::new()
            .batch(BatchConfig::default().per_request())
            .tenant(TenantSpec::new(DEFAULT_TENANT, Arc::clone(&graph), Arc::clone(&est)))
            .tenant(TenantSpec::new("paused", graph, est).quota(0))
            .build()
            .unwrap();
        let (tx, rx) = mpsc::channel();
        svc.handle_line("EST paused q1 SELECT * WHERE { ?x :hasAuthor ?y . }", &tx);
        match rx.recv().unwrap() {
            Reply::Error { id, code, message } => {
                assert_eq!(id, "q1");
                assert_eq!(code, Some(ErrorCode::Quota));
                assert!(message.contains("suspended"), "{message}");
            }
            other => panic!("expected ERR, got {other:?}"),
        }
        // STATS on the suspended namespace still answers (nothing served).
        svc.handle_line("STATS paused s1", &tx);
        match rx.recv().unwrap() {
            Reply::Stats { snapshot, .. } => assert_eq!(snapshot.served, 0),
            other => panic!("expected STATS, got {other:?}"),
        }
    }

    #[test]
    fn builder_rejects_bad_tenant_sets() {
        let graph = book_graph();
        let est: SharedEstimator = Arc::new(GraphSummary::build(&graph));
        assert_eq!(ServeBuilder::new().build().unwrap_err(), BuildError::NoTenants);
        let dup = ServeBuilder::new()
            .tenant(TenantSpec::new("a", Arc::clone(&graph), Arc::clone(&est)))
            .tenant(TenantSpec::new("a", Arc::clone(&graph), Arc::clone(&est)))
            .build()
            .unwrap_err();
        assert_eq!(dup, BuildError::DuplicateTenant("a".into()));
        for bad in ["", "has space", "SELECT"] {
            let err = ServeBuilder::new()
                .tenant(TenantSpec::new(bad, Arc::clone(&graph), Arc::clone(&est)))
                .build()
                .unwrap_err();
            assert_eq!(err, BuildError::InvalidTenantName(bad.into()), "name {bad:?}");
        }
    }

    #[test]
    fn deprecated_constructors_still_build_a_default_tenant() {
        #![allow(deprecated)]
        let graph = book_graph();
        let est: SharedEstimator = Arc::new(GraphSummary::build(&graph));
        let svc = EstimationService::new(graph, est, BatchConfig::default().per_request());
        assert_eq!(svc.tenant_names(), [DEFAULT_TENANT]);
        let (tx, rx) = mpsc::channel();
        svc.handle_line("EST q1 SELECT * WHERE { ?x :hasAuthor ?y . }", &tx);
        match rx.recv_timeout(Duration::from_secs(5)).unwrap() {
            Reply::Estimate { id, .. } => assert_eq!(id, "q1"),
            other => panic!("expected an estimate, got {other:?}"),
        }
    }

    #[test]
    fn serve_stream_session_end_to_end() {
        let svc = service(BatchConfig::default());
        let input = "\
# a tiny session
EST a SELECT * WHERE { ?x :hasAuthor :StephenKing . }
EST b SELECT * WHERE { ?x :hasAuthor ?a . ?a :bornIn :USA . }
garbage line
STATS s
QUIT
EST never SELECT * WHERE { ?x :hasAuthor ?y . }
";
        let out = serve_stream(&svc, input.as_bytes(), Vec::new());
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        // Estimate replies may be reordered relative to the direct ERR/STATS
        // replies; QUIT stops the session before the final request.
        assert_eq!(lines.len(), 4, "unexpected session transcript: {text}");
        assert!(lines.iter().any(|l| l.starts_with("OK a ")));
        assert!(lines.iter().any(|l| l.starts_with("OK b ")));
        assert!(lines.iter().any(|l| l.starts_with("ERR - code=parse ")));
        assert!(lines.iter().any(|l| l.starts_with("STATS s ")));
        assert!(!text.contains("never"));
    }

    #[test]
    fn non_utf8_line_gets_err_without_killing_the_session() {
        let svc = service(BatchConfig::default());
        let mut input: Vec<u8> = Vec::new();
        input.extend_from_slice(b"EST a SELECT * WHERE { ?x :hasAuthor :StephenKing . }\n");
        input.extend_from_slice(b"\xe9\xff not utf-8\n");
        input.extend_from_slice(b"EST b SELECT * WHERE { ?x :bornIn :USA . }\n");
        input.extend_from_slice(b"QUIT\n");
        let out = serve_stream(&svc, input.as_slice(), Vec::new());
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "unexpected transcript: {text}");
        assert!(lines.iter().any(|l| l.starts_with("OK a ")));
        assert!(l_starts(&lines, "ERR - ") == 1, "one ERR for the bad line: {text}");
        // The request *after* the bad bytes was still served.
        assert!(
            lines.iter().any(|l| l.starts_with("OK b ")),
            "session must survive: {text}"
        );
    }

    fn l_starts(lines: &[&str], prefix: &str) -> usize {
        lines.iter().filter(|l| l.starts_with(prefix)).count()
    }

    #[test]
    fn serve_tcp_round_trip() {
        use std::io::{BufRead as _, Write as _};
        use std::net::TcpStream;

        let svc = Arc::new(service(BatchConfig::default()));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn({
            let svc = Arc::clone(&svc);
            move || serve_tcp(&svc, listener, Some(1), &ShutdownFlag::new()).unwrap()
        });

        let mut client = TcpStream::connect(addr).unwrap();
        client
            .write_all(b"EST t1 SELECT * WHERE { ?x :hasAuthor :StephenKing . }\nQUIT\n")
            .unwrap();
        let mut reader = BufReader::new(client.try_clone().unwrap());
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        assert!(reply.starts_with("OK t1 "), "unexpected reply {reply:?}");
        // After QUIT the server closes the connection.
        let mut rest = String::new();
        reader.read_line(&mut rest).unwrap();
        assert!(rest.is_empty());
        server.join().unwrap();
    }

    #[test]
    fn tcp_shutdown_drains_in_flight_sessions() {
        use std::io::{BufRead as _, Write as _};
        use std::net::TcpStream;

        // A slow estimator so the request is still in the batcher when
        // shutdown triggers — the reply must arrive anyway.
        struct SlowEstimator;
        impl lmkg::CardinalityEstimator for SlowEstimator {
            fn name(&self) -> &str {
                "slow"
            }
            fn estimate(&self, _q: &lmkg_store::Query) -> f64 {
                std::thread::sleep(std::time::Duration::from_millis(300));
                42.0
            }
            fn memory_bytes(&self) -> usize {
                0
            }
        }

        let mut b = GraphBuilder::new();
        b.add(":a", ":p", ":b");
        let graph = Arc::new(b.build());
        let svc = Arc::new(
            ServeBuilder::new()
                .batch(BatchConfig::default().per_request())
                .tenant(TenantSpec::new(
                    DEFAULT_TENANT,
                    Arc::clone(&graph),
                    Arc::new(SlowEstimator),
                ))
                .build()
                .unwrap(),
        );
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let flag = ShutdownFlag::new();
        let server = std::thread::spawn({
            let svc = Arc::clone(&svc);
            let flag = flag.clone();
            move || serve_tcp(&svc, listener, None, &flag).unwrap()
        });

        // No QUIT: the session would block on the open connection forever
        // without the shutdown path closing its read half.
        let mut client = TcpStream::connect(addr).unwrap();
        client.write_all(b"EST d1 SELECT * WHERE { ?x :p ?y . }\n").unwrap();
        std::thread::sleep(std::time::Duration::from_millis(100)); // request admitted, forward running
        flag.trigger();

        // The in-flight request drains: its reply is written before the
        // session closes, and the accept loop joins the session and returns.
        let mut reader = BufReader::new(client.try_clone().unwrap());
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        assert!(reply.starts_with("OK d1 42 "), "in-flight reply must flush: {reply:?}");
        server.join().unwrap();
        assert_eq!(svc.stats().served, 1);
    }
}
