//! The micro-batcher: the piece that turns the batched inference contract
//! into a serving win.
//!
//! Requests enter a **bounded** admission queue (`try_send`; a full queue
//! sheds the request with a structured `OVERLOADED` reply instead of letting
//! latency grow without bound). Worker threads pull from the queue and
//! coalesce: the first request opens a batch, then the worker keeps
//! collecting until either `max_batch` requests are in hand (flush-on-full)
//! or `window` has elapsed since the batch opened (flush-on-window). The
//! whole batch runs through **one** `estimate_batch` forward, which is where
//! the amortization comes from — one routing pass, one encode pass, one
//! network forward per covering model, instead of one of each per request.
//!
//! With more than one worker, collection and estimation overlap **and**
//! estimation itself runs concurrently: estimation takes `&self` over a
//! frozen model, so every worker holds a clone of one
//! `Arc<dyn CardinalityEstimator + Send + Sync>` and runs its own
//! `estimate_batch` forward with no lock in between. The shared handle is a
//! [`ModelHandle`] — a swappable slot — so a retraining loop can publish a
//! new model atomically while traffic keeps flowing; workers pick it up at
//! their next batch. Per-query results are bitwise independent of the
//! worker count (the concurrency-parity suite enforces this).
//!
//! `BatchConfig::per_request()` degenerates the same machinery into
//! classical one-request-per-forward serving (window 0, batch 1), which is
//! exactly what the load generator compares against.
//!
//! In a multi-tenant service every tenant owns one `MicroBatcher` — its own
//! queue, workers, stats, and model handle — so batches are keyed by
//! (tenant, window) *by construction*: a forward can never mix two tenants'
//! models, a tenant's queue depth is its admission quota (a tenant at quota
//! sheds its own requests without starving anyone else), and a retraining
//! loop swaps each tenant's handle independently.

use crate::latency::{SlidingWindow, StatsSnapshot};
use crate::protocol::Reply;
use lmkg::{CardinalityEstimator, WorkloadMonitor};
use lmkg_obs::{Counter, EventLog, Gauge, HistSnapshot, Histogram, Level, ShardedHistogram};
use lmkg_store::Query;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex, PoisonError, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Latency samples retained for the percentile reporter.
const LATENCY_WINDOW: usize = 4096;

/// Structured events kept in the recent-event ring for `METRICS`.
const EVENT_RING_CAPACITY: usize = 256;

/// Event kinds with dedicated counters: their `lmkg_events_total{kind=...}`
/// series render even before the first occurrence, so dashboards and smoke
/// tests can assert on them unconditionally.
pub const EVENT_KINDS: &[&str] = &[
    "shed",
    "swap",
    "retrain",
    "drift",
    "parse_error",
    "session",
    "shutdown",
    "evict",
    "save",
    "load",
];

/// The request pipeline stages measured by the batcher, in order: admission
/// wait (submit → picked up by a worker), batch assembly (first job in hand
/// → batch closed), forward (the batched `estimate_batch` call), and reply
/// delivery (forward done → every reply handed to its session writer).
pub const STAGE_NAMES: [&str; 4] = ["admission", "batch", "forward", "reply"];

/// Micro-batching and admission-control knobs.
#[derive(Debug, Clone)]
pub struct BatchConfig {
    /// How long a batch stays open for more arrivals after its first
    /// request (flush-on-window). Zero disables coalescing.
    pub window: Duration,
    /// Flush as soon as this many requests are in hand (flush-on-full).
    pub max_batch: usize,
    /// Bounded admission-queue depth; arrivals beyond it are shed.
    pub queue_depth: usize,
    /// Worker threads. More than one pipelines queue collection with
    /// estimation; estimation itself is serialized on the estimator lock.
    pub workers: usize,
    /// Stage-level instrumentation (timers + histograms) on the hot path.
    /// Counters, the latency window, and the event ring stay on regardless;
    /// this only gates the per-batch `Instant::now()` calls and histogram
    /// records. `false` is the `--no-obs` A/B baseline.
    pub obs: bool,
}

impl Default for BatchConfig {
    fn default() -> Self {
        Self {
            window: Duration::from_millis(2),
            max_batch: 64,
            queue_depth: 1024,
            workers: 2,
            obs: true,
        }
    }
}

impl BatchConfig {
    /// The per-request baseline: no coalescing, one forward per request,
    /// **one** worker — classical serving. Forcing a single worker matters
    /// now that the estimator lock is gone: with N workers the "baseline"
    /// would run N concurrent single-query forwards and stop measuring
    /// one-request-per-forward serving. Queue depth is kept, so a
    /// comparison against the micro-batched configuration isolates the
    /// batching + concurrency effect.
    pub fn per_request(mut self) -> Self {
        self.window = Duration::ZERO;
        self.max_batch = 1;
        self.workers = 1;
        self
    }
}

/// One admitted request: the parsed query plus everything needed to reply.
#[derive(Debug)]
pub struct Job {
    /// Reply-matching token from the request line.
    pub id: String,
    /// The parsed query.
    pub query: Query,
    /// Admission time; the latency reporter measures submit→reply.
    pub submitted: Instant,
    /// Where the reply goes (the session's writer channel).
    pub out: mpsc::Sender<Reply>,
}

impl Job {
    /// Stamps a new job with the current time.
    pub fn new(id: String, query: Query, out: mpsc::Sender<Reply>) -> Self {
        Self {
            id,
            query,
            submitted: Instant::now(),
            out,
        }
    }
}

/// Shared serving counters, the sliding latency window, and the full
/// observability surface: stage histograms, session/byte/parse counters,
/// the queue-depth gauge, and the structured event ring.
#[derive(Debug)]
pub struct ServeStats {
    served: AtomicU64,
    shed: AtomicU64,
    batches: AtomicU64,
    retrains: AtomicU64,
    models_added: AtomicU64,
    models_evicted: AtomicU64,
    snapshot_generation: AtomicU64,
    model_bytes: AtomicU64,
    // Last drift evaluation, stored as f64 bit patterns.
    drift_tv_bits: AtomicU64,
    drift_uncovered_bits: AtomicU64,
    window: Mutex<SlidingWindow>,
    /// Whether stage-level instrumentation is live (`BatchConfig::obs`).
    obs: bool,
    started: Instant,
    pub(crate) parse_errors: Counter,
    pub(crate) sessions: Counter,
    pub(crate) sessions_active: Gauge,
    pub(crate) bytes_in: Counter,
    pub(crate) bytes_out: Counter,
    pub(crate) queue_len: Gauge,
    queue_capacity: AtomicU64,
    /// Stage latencies, indexed like [`STAGE_NAMES`]; one shard per worker.
    pub(crate) stages: [ShardedHistogram; 4],
    pub(crate) batch_size: ShardedHistogram,
    pub(crate) retrain_us: Histogram,
    events: EventLog,
}

impl ServeStats {
    fn new(obs: bool, workers: usize) -> Self {
        Self {
            served: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            retrains: AtomicU64::new(0),
            models_added: AtomicU64::new(0),
            models_evicted: AtomicU64::new(0),
            snapshot_generation: AtomicU64::new(0),
            model_bytes: AtomicU64::new(0),
            drift_tv_bits: AtomicU64::new(0.0f64.to_bits()),
            drift_uncovered_bits: AtomicU64::new(0.0f64.to_bits()),
            window: Mutex::new(SlidingWindow::new(LATENCY_WINDOW)),
            obs,
            started: Instant::now(),
            parse_errors: Counter::new(),
            sessions: Counter::new(),
            sessions_active: Gauge::new(),
            bytes_in: Counter::new(),
            bytes_out: Counter::new(),
            queue_len: Gauge::new(),
            queue_capacity: AtomicU64::new(0),
            stages: [
                ShardedHistogram::new(workers),
                ShardedHistogram::new(workers),
                ShardedHistogram::new(workers),
                ShardedHistogram::new(workers),
            ],
            batch_size: ShardedHistogram::new(workers),
            retrain_us: Histogram::new(),
            events: EventLog::new(EVENT_RING_CAPACITY, EVENT_KINDS),
        }
    }

    /// Whether stage-level instrumentation is recording.
    pub fn obs_enabled(&self) -> bool {
        self.obs
    }

    /// Seconds since these stats were created (server start).
    pub fn uptime_seconds(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Record a structured event: counted by kind and level, kept in the
    /// recent-event ring for `METRICS`, and echoed to stderr when the
    /// `LMKG_LOG` filter admits `level`.
    pub fn event(&self, level: Level, kind: &'static str, message: String) {
        self.events.log(level, kind, message);
    }

    /// The structured event ring.
    pub fn events(&self) -> &EventLog {
        &self.events
    }

    /// Counts one protocol parse error and records it as a `parse_error`
    /// event carrying the offending detail.
    pub fn note_parse_error(&self, detail: &str) {
        self.parse_errors.inc();
        self.event(Level::Warn, "parse_error", format!("parse error: {detail}"));
    }

    /// Counts a session opening (total + active gauge).
    pub fn note_session_start(&self) {
        self.sessions.inc();
        self.sessions_active.inc();
    }

    /// Counts a session closing.
    pub fn note_session_end(&self) {
        self.sessions_active.dec();
    }

    /// Records the duration of one adapter retrain cycle.
    pub fn note_retrain_duration(&self, duration: Duration) {
        self.retrain_us.record(duration.as_secs_f64() * 1e6);
    }

    /// The configured admission-queue capacity (0 until a batcher starts).
    pub fn queue_capacity(&self) -> u64 {
        self.queue_capacity.load(Ordering::Relaxed)
    }

    /// Current admission-queue depth. Transiently off by the number of jobs
    /// between a worker's dequeue and its gauge decrement — a gauge, not an
    /// invariant.
    pub fn queue_len(&self) -> i64 {
        self.queue_len.get()
    }

    /// The recent-window request-latency distribution as a mergeable
    /// snapshot (for the exposition; `STATS` uses [`ServeStats::snapshot`]).
    pub fn window_snapshot(&self) -> HistSnapshot {
        // Poisoned-lock recovery: the window is a ring of bucket indices,
        // valid after any partial update, and losing one sample to a
        // panicking recorder must not wedge every later scrape.
        self.window.lock().unwrap_or_else(PoisonError::into_inner).snapshot()
    }

    /// Counts one shed request.
    pub fn note_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records the memory footprint of the currently published model. The
    /// batcher sets it at startup and on [`MicroBatcher::swap_model`]; a
    /// caller swapping through the raw [`ModelHandle`] (the adapter does)
    /// refreshes it alongside.
    pub fn note_model_bytes(&self, bytes: u64) {
        self.model_bytes.store(bytes, Ordering::Relaxed);
    }

    /// Records the adapter's latest drift evaluation.
    pub fn note_drift(&self, tv: f64, uncovered: f64) {
        self.drift_tv_bits.store(tv.to_bits(), Ordering::Relaxed);
        self.drift_uncovered_bits.store(uncovered.to_bits(), Ordering::Relaxed);
    }

    /// Counts one retrain event that added `added` models.
    ///
    /// `SeqCst` on purpose: the adapter publishes the extended model
    /// (`ModelHandle::swap`) *before* calling this, so any thread that reads
    /// `retrains >= 1` from a snapshot is guaranteed that batches it submits
    /// afterwards resolve the new model.
    pub fn note_retrain(&self, added: usize) {
        self.models_added.fetch_add(added as u64, Ordering::SeqCst);
        self.retrains.fetch_add(1, Ordering::SeqCst);
    }

    /// Counts models dropped by a budget-eviction pass. Relaxed is enough:
    /// the evicted set is published through `ModelHandle::swap` first, and
    /// nothing orders itself on this counter.
    pub fn note_evicted(&self, dropped: usize) {
        self.models_evicted.fetch_add(dropped as u64, Ordering::Relaxed);
    }

    /// Records the generation of the snapshot most recently published to
    /// (or cold-started from) the tenant's model store.
    pub fn note_generation(&self, generation: u64) {
        self.snapshot_generation.store(generation, Ordering::Relaxed);
    }

    fn note_batch(&self, size: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.served.fetch_add(size as u64, Ordering::Relaxed);
    }

    fn record_latency(&self, micros: f64) {
        // Same recovery as `window_snapshot`: the ring tolerates a lost
        // sample, a poisoned mutex must not take the stats surface down.
        self.window
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .record(micros);
    }

    /// A point-in-time summary (counters + window percentiles).
    pub fn snapshot(&self) -> StatsSnapshot {
        let (p50_us, p95_us, p99_us) = self.window.lock().unwrap_or_else(PoisonError::into_inner).percentiles();
        StatsSnapshot {
            served: self.served.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            retrains: self.retrains.load(Ordering::SeqCst),
            models_added: self.models_added.load(Ordering::SeqCst),
            evicted: self.models_evicted.load(Ordering::Relaxed),
            generation: self.snapshot_generation.load(Ordering::Relaxed),
            model_bytes: self.model_bytes.load(Ordering::Relaxed),
            drift_tv: f64::from_bits(self.drift_tv_bits.load(Ordering::Relaxed)),
            drift_uncovered: f64::from_bits(self.drift_uncovered_bits.load(Ordering::Relaxed)),
            p50_us,
            p95_us,
            p99_us,
        }
    }
}

/// The form every served model takes: frozen, `&self`-estimating, shareable.
pub type SharedEstimator = Arc<dyn CardinalityEstimator + Send + Sync>;

/// The workload monitor the batcher feeds and the adapter thread reads —
/// the observation half of the workload-shift loop (paper §IV, Model
/// choice). Admission pushes one `(shape, size)` cell under this mutex
/// (O(1), never held across a forward); the adapter locks it once per tick
/// to pull a drift report.
pub type SharedMonitor = Arc<Mutex<WorkloadMonitor>>;

/// The swappable model slot all workers read from.
///
/// `current()` is a read-lock plus an `Arc` clone — effectively free next to
/// a network forward, and never held across one. `swap()` atomically
/// publishes a replacement model: in-flight batches finish on the model they
/// already cloned, subsequent batches see the new one. This is the seam the
/// workload-shift retraining loop plugs into — train off to the side, then
/// `swap` under live traffic.
pub struct ModelHandle {
    slot: RwLock<SharedEstimator>,
}

impl ModelHandle {
    /// Wraps an estimator in a swappable slot.
    pub fn new(estimator: SharedEstimator) -> Self {
        Self {
            slot: RwLock::new(estimator),
        }
    }

    /// The currently published model.
    ///
    /// Poisoned-lock recovery on both accessors: the slot holds a bare
    /// `Arc` that is replaced in one assignment, so it is never torn —
    /// if an adapter thread panics mid-swap the slot still holds a whole
    /// model, and serving must keep estimating rather than propagate the
    /// panic into every worker.
    pub fn current(&self) -> SharedEstimator {
        Arc::clone(&self.slot.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Atomically publishes `estimator`, returning the model it replaced.
    pub fn swap(&self, estimator: SharedEstimator) -> SharedEstimator {
        std::mem::replace(
            &mut *self.slot.write().unwrap_or_else(PoisonError::into_inner),
            estimator,
        )
    }
}

/// The micro-batcher: bounded queue + coalescing worker threads over one
/// shared, swappable estimator. Dropping it (or calling
/// [`MicroBatcher::shutdown`]) closes the queue and joins the workers after
/// they drain it.
pub struct MicroBatcher {
    tx: Option<SyncSender<Job>>,
    workers: Vec<JoinHandle<()>>,
    handle: Arc<ModelHandle>,
    stats: Arc<ServeStats>,
    monitor: Option<SharedMonitor>,
    queue_depth: usize,
}

impl MicroBatcher {
    /// Spawns the worker threads and returns the running batcher.
    pub fn start(estimator: SharedEstimator, cfg: BatchConfig) -> Self {
        Self::start_observed(estimator, cfg, None)
    }

    /// Like [`MicroBatcher::start`], but every *admitted* query is also
    /// recorded into `monitor` — shed requests are not, since they were
    /// never served and retraining for a workload the queue rejects would
    /// chase load, not drift.
    pub fn start_observed(estimator: SharedEstimator, cfg: BatchConfig, monitor: Option<SharedMonitor>) -> Self {
        assert!(cfg.max_batch >= 1, "max_batch must be at least 1");
        assert!(cfg.queue_depth >= 1, "queue_depth must be at least 1");
        assert!(cfg.workers >= 1, "at least one worker is required");
        let (tx, rx) = mpsc::sync_channel::<Job>(cfg.queue_depth);
        let rx = Arc::new(Mutex::new(rx));
        let stats = Arc::new(ServeStats::new(cfg.obs, cfg.workers));
        stats.note_model_bytes(estimator.memory_bytes() as u64);
        stats.queue_capacity.store(cfg.queue_depth as u64, Ordering::Relaxed);
        let handle = Arc::new(ModelHandle::new(estimator));
        let workers = (0..cfg.workers)
            .map(|i| {
                let rx = Arc::clone(&rx);
                let handle = Arc::clone(&handle);
                let stats = Arc::clone(&stats);
                let (window, max_batch) = (cfg.window, cfg.max_batch);
                std::thread::Builder::new()
                    .name(format!("lmkg-serve-worker-{i}"))
                    .spawn(move || worker_loop(&rx, &handle, &stats, window, max_batch, i))
                    .expect("spawn worker thread")
            })
            .collect();
        Self {
            tx: Some(tx),
            workers,
            handle,
            stats,
            monitor,
            queue_depth: cfg.queue_depth,
        }
    }

    /// Admits a job, or sheds it when the bounded queue is full. The shed
    /// job is handed back so the caller can send the `OVERLOADED` reply.
    pub fn submit(&self, job: Job) -> Result<(), Job> {
        // `tx` is only `None` mid-shutdown, and `shutdown` consumes the
        // batcher — so this arm is unreachable today. Shed instead of
        // panicking so a future shared-ownership refactor degrades to an
        // `OVERLOADED` reply, not a crashed session.
        let Some(tx) = self.tx.as_ref() else {
            self.stats.note_shed();
            return Err(job);
        };
        // Classify before the job moves into the queue; only admitted
        // queries are observed.
        let cell = self.monitor.as_ref().map(|_| (job.query.shape(), job.query.size()));
        match tx.try_send(job) {
            Ok(()) => {
                self.stats.queue_len.inc();
                if let (Some(monitor), Some(cell)) = (&self.monitor, cell) {
                    // Counter increments can't tear; a panicked observer
                    // must not stop drift tracking for good.
                    monitor
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .observe_cell(cell);
                }
                Ok(())
            }
            Err(TrySendError::Full(job)) => {
                self.stats.note_shed();
                if self.stats.obs {
                    self.stats.event(
                        Level::Debug,
                        "shed",
                        format!("shed: request {} rejected, queue full at {}", job.id, self.queue_depth),
                    );
                }
                Err(job)
            }
            // Workers only exit once the queue closes, so this arm is
            // unreachable while `tx` is alive; treat it like a shed anyway.
            Err(TrySendError::Disconnected(job)) => {
                self.stats.note_shed();
                Err(job)
            }
        }
    }

    /// The configured admission-queue depth (reported in `OVERLOADED`).
    pub fn queue_depth(&self) -> usize {
        self.queue_depth
    }

    /// The shared serving statistics.
    pub fn stats(&self) -> Arc<ServeStats> {
        Arc::clone(&self.stats)
    }

    /// The swappable model slot (for live model publication).
    pub fn model(&self) -> Arc<ModelHandle> {
        Arc::clone(&self.handle)
    }

    /// Atomically publishes a new model for subsequent batches, returning
    /// the one it replaced. Convenience over [`MicroBatcher::model`] that
    /// also keeps the reported `model_bytes` current.
    pub fn swap_model(&self, estimator: SharedEstimator) -> SharedEstimator {
        let bytes = estimator.memory_bytes() as u64;
        self.stats.note_model_bytes(bytes);
        let old = self.handle.swap(estimator);
        self.stats
            .event(Level::Info, "swap", format!("swap: published model of {bytes} bytes"));
        old
    }

    /// Closes the queue, drains it, joins the workers, and hands the
    /// estimator back — so a caller can run several serving configurations
    /// over one (expensively trained) model, as the load generator does.
    pub fn shutdown(mut self) -> SharedEstimator {
        self.finish();
        self.handle.current()
    }

    fn finish(&mut self) {
        if self.tx.take().is_some() {
            // Queue closed; workers drain and exit.
            let snapshot = self.stats.snapshot();
            self.stats.event(
                Level::Info,
                "shutdown",
                format!(
                    "shutdown: batcher draining, served={} shed={}",
                    snapshot.served, snapshot.shed
                ),
            );
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for MicroBatcher {
    fn drop(&mut self) {
        self.finish();
    }
}

/// One worker: collect a batch (flush-on-full / flush-on-window), run one
/// batched forward, reply per job. Returns when the queue closes and drains.
///
/// With `stats.obs` on, the worker also laps a [`lmkg_obs::StageTimer`]-style
/// breakdown into its own histogram shards: each job's admission wait on
/// dequeue, then batch assembly / forward / reply delivery per batch. The
/// four laps tile the request's life, so `admission + batch + forward +
/// reply` ≈ the end-to-end latency the reply reports.
fn worker_loop(
    rx: &Mutex<Receiver<Job>>,
    handle: &ModelHandle,
    stats: &ServeStats,
    window: Duration,
    max_batch: usize,
    worker: usize,
) {
    let obs = stats.obs;
    let admission = stats.stages[0].shard(worker);
    let assembly = stats.stages[1].shard(worker);
    let forward = stats.stages[2].shard(worker);
    let reply = stats.stages[3].shard(worker);
    let batch_size = stats.batch_size.shard(worker);
    loop {
        let mut batch: Vec<Job> = Vec::with_capacity(max_batch);
        let mut timer: Option<lmkg_obs::StageTimer> = None;
        {
            // Hold the queue while collecting so one worker owns the open
            // batch; estimation below happens outside this lock, which is
            // what lets another worker collect meanwhile.
            // If a sibling worker panicked while holding the queue, the
            // channel itself is still intact — keep draining it instead
            // of cascading the panic through every worker.
            let rx = rx.lock().unwrap_or_else(PoisonError::into_inner);
            match rx.recv() {
                Ok(job) => {
                    if obs {
                        admission.record(job.submitted.elapsed().as_secs_f64() * 1e6);
                        timer = Some(lmkg_obs::StageTimer::start());
                    }
                    stats.queue_len.dec();
                    batch.push(job);
                }
                Err(_) => return, // queue closed and empty
            }
            let deadline = Instant::now() + window;
            while batch.len() < max_batch {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                match rx.recv_timeout(deadline - now) {
                    Ok(job) => {
                        if obs {
                            admission.record(job.submitted.elapsed().as_secs_f64() * 1e6);
                        }
                        stats.queue_len.dec();
                        batch.push(job);
                    }
                    Err(RecvTimeoutError::Timeout) => break,
                    Err(RecvTimeoutError::Disconnected) => break,
                }
            }
        }

        // Batch assembly ends here; its lap started at the first job's
        // dequeue, so it includes the flush-on-window wait — the
        // coalescing cost a latency budget actually cares about.
        if let Some(t) = timer.as_mut() {
            t.lap(assembly);
            batch_size.record(batch.len() as f64);
        }

        // The jobs own their queries: split them out instead of cloning on
        // the hot path (a Query is a heap-backed Vec of triples).
        type JobMeta = (String, Instant, mpsc::Sender<Reply>);
        let (metas, queries): (Vec<JobMeta>, Vec<Query>) = batch
            .into_iter()
            .map(|job| ((job.id, job.submitted, job.out), job.query))
            .unzip();
        // Clone the current model handle and run the forward on it with no
        // lock held: workers estimate concurrently, and a model swapped in
        // mid-collection is picked up at the next batch.
        let estimator = handle.current();
        let estimates = estimator.estimate_batch(&queries);
        debug_assert_eq!(estimates.len(), queries.len());
        if let Some(t) = timer.as_mut() {
            t.lap(forward);
        }
        stats.note_batch(queries.len());
        for ((id, submitted, out), estimate) in metas.into_iter().zip(estimates) {
            let micros = submitted.elapsed().as_secs_f64() * 1e6;
            stats.record_latency(micros);
            // A dead session (client hung up) is not an error for the server.
            let _ = out.send(Reply::Estimate { id, estimate, micros });
        }
        if let Some(t) = timer.as_mut() {
            t.lap(reply);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmkg_store::{NodeTerm, PredTerm, TriplePattern, VarId};
    use std::collections::HashMap;
    use std::sync::mpsc::channel;

    /// A deterministic estimator that records every batch size it sees and
    /// optionally sleeps per forward (to simulate model latency). Also
    /// tracks how many forwards are in flight at once, to prove workers
    /// really estimate concurrently now that the estimator lock is gone.
    struct RecordingEstimator {
        batches: Arc<Mutex<Vec<usize>>>,
        delay: Duration,
        in_flight: std::sync::atomic::AtomicUsize,
        max_in_flight: std::sync::atomic::AtomicUsize,
    }

    impl CardinalityEstimator for RecordingEstimator {
        fn name(&self) -> &str {
            "recording"
        }

        fn estimate(&self, query: &Query) -> f64 {
            (query.size() * 10 + query.var_count()) as f64
        }

        fn estimate_batch(&self, queries: &[Query]) -> Vec<f64> {
            let now = self.in_flight.fetch_add(1, Ordering::SeqCst) + 1;
            self.max_in_flight.fetch_max(now, Ordering::SeqCst);
            self.batches.lock().unwrap().push(queries.len());
            if !self.delay.is_zero() {
                std::thread::sleep(self.delay);
            }
            self.in_flight.fetch_sub(1, Ordering::SeqCst);
            queries.iter().map(|q| (q.size() * 10 + q.var_count()) as f64).collect()
        }

        fn memory_bytes(&self) -> usize {
            0
        }
    }

    fn query(size: usize) -> Query {
        Query::new(
            (0..size)
                .map(|i| {
                    TriplePattern::new(
                        NodeTerm::Var(VarId(0)),
                        PredTerm::Bound(lmkg_store::PredId(i as u32)),
                        NodeTerm::Var(VarId(1 + i as u16)),
                    )
                })
                .collect(),
        )
    }

    fn recording(delay: Duration) -> (Arc<RecordingEstimator>, Arc<Mutex<Vec<usize>>>) {
        let batches = Arc::new(Mutex::new(Vec::new()));
        let est = RecordingEstimator {
            batches: Arc::clone(&batches),
            delay,
            in_flight: std::sync::atomic::AtomicUsize::new(0),
            max_in_flight: std::sync::atomic::AtomicUsize::new(0),
        };
        (Arc::new(est), batches)
    }

    #[test]
    fn flush_on_window_coalesces_small_batches() {
        let (est, batches) = recording(Duration::ZERO);
        let batcher = MicroBatcher::start(
            est,
            BatchConfig {
                window: Duration::from_millis(150),
                max_batch: 100,
                queue_depth: 16,
                workers: 1,
                obs: true,
            },
        );
        let (tx, rx) = channel();
        let start = Instant::now();
        batcher.submit(Job::new("a".into(), query(1), tx.clone())).unwrap();
        batcher.submit(Job::new("b".into(), query(2), tx.clone())).unwrap();
        let first = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        let second = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        let elapsed = start.elapsed();
        assert!(matches!(first, Reply::Estimate { .. }));
        assert!(matches!(second, Reply::Estimate { .. }));
        // Far below max_batch, so only the window can have flushed — and
        // both near-simultaneous arrivals must land in the same forward.
        assert!(
            elapsed >= Duration::from_millis(100),
            "flushed before the window: {elapsed:?}"
        );
        assert_eq!(*batches.lock().unwrap(), vec![2]);
        assert_eq!(batcher.stats().snapshot().served, 2);
    }

    #[test]
    fn flush_on_full_does_not_wait_for_the_window() {
        // 100 ms per forward, 300 ms window, batches capped at 2. Five jobs
        // submitted at once must flow as [2, 2, 1]: the full flushes happen
        // immediately (queue is non-empty), never waiting out the window.
        let (est, batches) = recording(Duration::from_millis(100));
        let batcher = MicroBatcher::start(
            est,
            BatchConfig {
                window: Duration::from_millis(300),
                max_batch: 2,
                queue_depth: 16,
                workers: 1,
                obs: true,
            },
        );
        let (tx, rx) = channel();
        let start = Instant::now();
        for i in 0..5 {
            batcher.submit(Job::new(format!("q{i}"), query(1), tx.clone())).unwrap();
        }
        for _ in 0..5 {
            rx.recv_timeout(Duration::from_secs(5)).unwrap();
        }
        let elapsed = start.elapsed();
        assert_eq!(*batches.lock().unwrap(), vec![2, 2, 1]);
        // Flush-on-window for every batch would cost ≥ 3×(300+100) ms; the
        // two full batches flushing immediately keeps the run well under it.
        // (The final batch of one still waits out its window.)
        assert!(
            elapsed < Duration::from_millis(1000),
            "full batches waited for the window: {elapsed:?}"
        );
        let snapshot = batcher.stats().snapshot();
        assert_eq!(snapshot.served, 5);
        assert_eq!(snapshot.batches, 3);
    }

    #[test]
    fn overflow_sheds_with_the_job_handed_back() {
        // One slow worker in per-request mode and a queue of 2: job 1 is in
        // service, jobs 2–3 fill the queue, job 4 must shed.
        let (est, _batches) = recording(Duration::from_millis(300));
        let batcher = MicroBatcher::start(
            est,
            BatchConfig {
                window: Duration::ZERO,
                max_batch: 1,
                queue_depth: 2,
                workers: 1,
                obs: true,
            },
        );
        let (tx, rx) = channel();
        batcher
            .submit(Job::new("serving".into(), query(1), tx.clone()))
            .unwrap();
        std::thread::sleep(Duration::from_millis(100)); // worker now inside the forward
        batcher
            .submit(Job::new("queued1".into(), query(1), tx.clone()))
            .unwrap();
        batcher
            .submit(Job::new("queued2".into(), query(1), tx.clone()))
            .unwrap();
        let shed = batcher
            .submit(Job::new("shed-me".into(), query(1), tx.clone()))
            .expect_err("queue of 2 must shed the fourth concurrent job");
        assert_eq!(shed.id, "shed-me");
        assert!(batcher.stats().snapshot().shed >= 1);
        // The admitted jobs all still complete.
        for _ in 0..3 {
            rx.recv_timeout(Duration::from_secs(5)).unwrap();
        }
        assert_eq!(batcher.stats().snapshot().served, 3);
    }

    #[test]
    fn batched_replies_match_direct_estimate_batch() {
        let queries: Vec<Query> = (1..=20).map(|i| query(1 + i % 4)).collect();
        let (direct, _) = recording(Duration::ZERO);
        let expected = direct.estimate_batch(&queries);

        let (est, _) = recording(Duration::ZERO);
        let batcher = MicroBatcher::start(
            est,
            BatchConfig {
                window: Duration::from_millis(5),
                max_batch: 8,
                queue_depth: 64,
                workers: 2,
                obs: true,
            },
        );
        let (tx, rx) = channel();
        for (i, q) in queries.iter().enumerate() {
            batcher
                .submit(Job::new(format!("q{i}"), q.clone(), tx.clone()))
                .unwrap();
        }
        let mut got = vec![f64::NAN; queries.len()];
        for _ in 0..queries.len() {
            match rx.recv_timeout(Duration::from_secs(5)).unwrap() {
                Reply::Estimate { id, estimate, .. } => {
                    let i: usize = id.strip_prefix('q').unwrap().parse().unwrap();
                    got[i] = estimate;
                }
                other => panic!("unexpected reply {other:?}"),
            }
        }
        assert_eq!(
            got.iter().map(|e| e.to_bits()).collect::<Vec<_>>(),
            expected.iter().map(|e| e.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn shutdown_returns_the_estimator() {
        let (est, batches) = recording(Duration::ZERO);
        let batcher = MicroBatcher::start(est, BatchConfig::default().per_request());
        let (tx, rx) = channel();
        batcher.submit(Job::new("q".into(), query(2), tx)).unwrap();
        rx.recv_timeout(Duration::from_secs(5)).unwrap();
        let est = batcher.shutdown();
        assert_eq!(est.name(), "recording");
        // Still usable directly, and the serving pass recorded its batch.
        // query(2) = 2 triples over 3 distinct variables → 2*10 + 3.
        assert_eq!(est.estimate(&query(2)), 23.0);
        assert_eq!(*batches.lock().unwrap(), vec![1]);
    }

    /// With the estimator lock gone, two workers must be able to sit inside
    /// `estimate_batch` at the same time.
    #[test]
    fn workers_run_forwards_concurrently() {
        let (est, _) = recording(Duration::from_millis(250));
        let probe = Arc::clone(&est);
        let batcher = MicroBatcher::start(
            est,
            BatchConfig {
                window: Duration::ZERO,
                max_batch: 1,
                queue_depth: 16,
                workers: 2,
                obs: true,
            },
        );
        let (tx, rx) = channel();
        for i in 0..4 {
            batcher.submit(Job::new(format!("q{i}"), query(1), tx.clone())).unwrap();
        }
        for _ in 0..4 {
            rx.recv_timeout(Duration::from_secs(5)).unwrap();
        }
        assert!(
            probe.max_in_flight.load(Ordering::SeqCst) >= 2,
            "two workers never overlapped inside estimate_batch"
        );
    }

    /// A deterministic stand-in "retrained" model for the swap test.
    struct ConstantEstimator(f64);

    impl CardinalityEstimator for ConstantEstimator {
        fn name(&self) -> &str {
            "constant"
        }

        fn estimate(&self, _query: &Query) -> f64 {
            self.0
        }

        fn memory_bytes(&self) -> usize {
            8
        }
    }

    /// Publishing a new model through the handle redirects subsequent
    /// batches without restarting the batcher — the retraining-loop seam.
    #[test]
    fn swap_model_takes_effect_for_subsequent_batches() {
        let (est, _) = recording(Duration::ZERO);
        let batcher = MicroBatcher::start(est, BatchConfig::default().per_request());
        let (tx, rx) = channel();
        batcher.submit(Job::new("before".into(), query(2), tx.clone())).unwrap();
        match rx.recv_timeout(Duration::from_secs(5)).unwrap() {
            Reply::Estimate { estimate, .. } => assert_eq!(estimate, 23.0),
            other => panic!("unexpected reply {other:?}"),
        }

        let old = batcher.swap_model(Arc::new(ConstantEstimator(77.0)));
        assert_eq!(old.name(), "recording");
        batcher.submit(Job::new("after".into(), query(2), tx.clone())).unwrap();
        match rx.recv_timeout(Duration::from_secs(5)).unwrap() {
            Reply::Estimate { estimate, .. } => assert_eq!(estimate, 77.0),
            other => panic!("unexpected reply {other:?}"),
        }
        assert_eq!(batcher.shutdown().name(), "constant");
    }

    /// A swappable snapshot stand-in whose replies encode *which forward*
    /// produced them: each `estimate_batch` call returns `tag + calls/1024`
    /// for every query in the batch and logs `(value, batch size)`. Replies
    /// from one forward therefore all carry one unique value, and a worker
    /// that resolved `current()` more than once per batch (a torn batch)
    /// would produce a reply multiset inconsistent with the log.
    struct SnapshotEstimator {
        tag: f64,
        calls: AtomicU64,
        log: Arc<Mutex<Vec<(u64, usize)>>>,
    }

    impl SnapshotEstimator {
        fn new(tag: f64, log: Arc<Mutex<Vec<(u64, usize)>>>) -> Self {
            Self {
                tag,
                calls: AtomicU64::new(0),
                log,
            }
        }
    }

    impl CardinalityEstimator for SnapshotEstimator {
        fn name(&self) -> &str {
            "snapshot"
        }

        fn estimate(&self, _query: &Query) -> f64 {
            unreachable!("batched path only")
        }

        fn estimate_batch(&self, queries: &[Query]) -> Vec<f64> {
            let call = self.calls.fetch_add(1, Ordering::SeqCst) + 1;
            let value = self.tag + call as f64 / 1024.0;
            self.log.lock().unwrap().push((value.to_bits(), queries.len()));
            vec![value; queries.len()]
        }

        fn memory_bytes(&self) -> usize {
            0
        }
    }

    /// Spamming `ModelHandle::swap` while workers serve a continuous stream
    /// must never tear a batch: every reply batch is consistent with exactly
    /// one model snapshot (each worker resolves `current()` once per batch),
    /// and no reply is dropped.
    #[test]
    fn swap_spam_never_tears_a_batch() {
        const JOBS: usize = 600;
        const SWAPS: usize = 200;

        let log: Arc<Mutex<Vec<(u64, usize)>>> = Arc::new(Mutex::new(Vec::new()));
        let batcher = MicroBatcher::start(
            Arc::new(SnapshotEstimator::new(0.0, Arc::clone(&log))),
            BatchConfig {
                window: Duration::from_micros(200),
                max_batch: 8,
                queue_depth: JOBS,
                workers: 3,
                obs: true,
            },
        );

        // Swapper: publish a fresh snapshot (tags 1000, 2000, …) as fast as
        // the workers can batch, while the submitter keeps the queue fed.
        let handle = batcher.model();
        let swapper = {
            let log = Arc::clone(&log);
            std::thread::spawn(move || {
                for i in 1..=SWAPS {
                    handle.swap(Arc::new(SnapshotEstimator::new((i * 1000) as f64, Arc::clone(&log))));
                    std::thread::yield_now();
                }
            })
        };

        let (tx, rx) = channel();
        for i in 0..JOBS {
            batcher
                .submit(Job::new(format!("q{i}"), query(1 + i % 3), tx.clone()))
                .unwrap();
        }
        let mut reply_counts: HashMap<u64, usize> = HashMap::new();
        for _ in 0..JOBS {
            match rx
                .recv_timeout(Duration::from_secs(30))
                .expect("no reply dropped during swaps")
            {
                Reply::Estimate { estimate, .. } => *reply_counts.entry(estimate.to_bits()).or_insert(0) += 1,
                other => panic!("unexpected reply {other:?}"),
            }
        }
        swapper.join().unwrap();
        drop(batcher); // workers drain; the log is complete

        // Every reply value identifies one logged forward, and the number of
        // replies carrying it equals that forward's batch size — i.e. each
        // reply batch came from exactly one snapshot, uncut.
        let mut logged: HashMap<u64, usize> = HashMap::new();
        for &(value, size) in log.lock().unwrap().iter() {
            *logged.entry(value).or_insert(0) += size;
        }
        for (&value, &replies) in &reply_counts {
            assert_eq!(
                logged.get(&value),
                Some(&replies),
                "torn batch: value {} answered {replies} replies but the forward(s) served {:?}",
                f64::from_bits(value),
                logged.get(&value),
            );
        }
        assert_eq!(reply_counts.values().sum::<usize>(), JOBS);
    }

    /// Admitted queries land in the shared monitor; shed ones do not.
    #[test]
    fn admission_observes_into_the_monitor() {
        use lmkg::WorkloadMonitor;
        use lmkg_store::QueryShape;

        let monitor: SharedMonitor = Arc::new(Mutex::new(WorkloadMonitor::new(64, &[(QueryShape::Star, 2)])));
        let (est, _) = recording(Duration::from_millis(150));
        let batcher = MicroBatcher::start_observed(
            est,
            BatchConfig {
                window: Duration::ZERO,
                max_batch: 1,
                queue_depth: 1,
                workers: 1,
                obs: true,
            },
            Some(Arc::clone(&monitor)),
        );
        let (tx, rx) = channel();
        batcher.submit(Job::new("a".into(), query(2), tx.clone())).unwrap();
        std::thread::sleep(Duration::from_millis(50)); // worker inside the forward
        batcher.submit(Job::new("b".into(), query(4), tx.clone())).unwrap();
        // Queue (depth 1) is now full; this one sheds and must not count.
        let _ = batcher
            .submit(Job::new("shed".into(), query(5), tx.clone()))
            .expect_err("third concurrent job must shed");
        for _ in 0..2 {
            rx.recv_timeout(Duration::from_secs(5)).unwrap();
        }
        let m = monitor.lock().unwrap();
        assert_eq!(m.observed(), 2, "two admitted, one shed");
        let report = m.report(|_| true);
        let cells: Vec<_> = report.dominant_cells.iter().map(|&(c, _)| c).collect();
        assert!(cells.contains(&(QueryShape::Star, 2)) && cells.contains(&(QueryShape::Star, 4)));
        assert!(!cells.contains(&(QueryShape::Star, 5)), "shed query observed");
    }

    #[test]
    fn per_request_config_disables_coalescing_and_concurrency() {
        let cfg = BatchConfig::default().per_request();
        assert_eq!(cfg.max_batch, 1);
        assert_eq!(cfg.window, Duration::ZERO);
        assert_eq!(cfg.workers, 1);
        assert_eq!(cfg.queue_depth, BatchConfig::default().queue_depth);
    }
}
