//! The `METRICS` exposition: every observable the serving stack records,
//! rendered as Prometheus-style text.
//!
//! This is the composition point between the generic [`lmkg_obs`]
//! primitives and LMKG's own series names. One call to [`render_metrics`]
//! scrapes:
//!
//! - the request counters and the recent-window latency distribution
//!   ([`ServeStats`]),
//! - the four pipeline stage histograms (`admission`/`batch`/`forward`/
//!   `reply`) and the batch-size distribution,
//! - session, byte, and parse-error counters plus the queue-depth gauge,
//! - the adapter's drift gauges and retrain-duration histogram,
//! - `lmkg-nn`'s process-global profiling counters (kernel dispatches by
//!   path and kernel, FLOPs, workspace high-water mark),
//! - the structured event ring (per-kind counters, then `# EVENT` lines).
//!
//! The returned text has no trailing `# EOF`; the protocol layer's
//! [`crate::protocol::Reply::Metrics`] appends the sentinel when framing.

use crate::batcher::{ServeStats, STAGE_NAMES};
use lmkg_obs::Expo;

/// Render the unlabeled (v1) exposition for one server — the `default`
/// tenant's view, byte-compatible with pre-v2 scrapers.
pub fn render_metrics(stats: &ServeStats) -> String {
    render_metrics_for(None, stats)
}

/// Render the exposition for one tenant's stats shard. With
/// `tenant = Some(name)` every per-tenant series carries a
/// `tenant="name"` label (what a v2 `METRICS <tenant> <id>` request
/// scrapes); with `None` the series are unlabeled and the process-global
/// kernel-profile section is appended — those counters are shared by every
/// tenant (one GEMM core serves them all), so they only belong in the
/// unlabeled exposition where they can't be misread as per-tenant.
///
/// All scrapes are snapshots — concurrent traffic keeps flowing while this
/// walks the fixed bucket arrays.
pub fn render_metrics_for(tenant: Option<&str>, stats: &ServeStats) -> String {
    let scope = match tenant {
        Some(name) => format!("tenant=\"{name}\","),
        None => String::new(),
    };
    let snapshot = stats.snapshot();
    let mut e = Expo::new();

    e.gauge_f64_with(
        "lmkg_uptime_seconds",
        "Seconds since the serving stats were created",
        &scope,
        stats.uptime_seconds(),
    );
    e.counter_with(
        "lmkg_requests_served_total",
        "Requests answered with an estimate",
        &scope,
        snapshot.served,
    );
    e.counter_with(
        "lmkg_requests_shed_total",
        "Requests shed by admission control",
        &scope,
        snapshot.shed,
    );
    e.counter_with(
        "lmkg_parse_errors_total",
        "Request lines rejected by the protocol parser",
        &scope,
        stats.parse_errors.get(),
    );
    e.counter_with(
        "lmkg_batches_total",
        "Batched forwards executed",
        &scope,
        snapshot.batches,
    );
    e.counter_with(
        "lmkg_sessions_total",
        "Sessions opened since start",
        &scope,
        stats.sessions.get(),
    );
    e.gauge_with(
        "lmkg_sessions_active",
        "Sessions currently open",
        &scope,
        stats.sessions_active.get(),
    );
    e.counter_with(
        "lmkg_bytes_read_total",
        "Request bytes read from all transports",
        &scope,
        stats.bytes_in.get(),
    );
    e.counter_with(
        "lmkg_bytes_written_total",
        "Reply bytes written to all transports",
        &scope,
        stats.bytes_out.get(),
    );

    e.gauge_with(
        "lmkg_queue_depth",
        "Admitted jobs currently waiting in the bounded queue",
        &scope,
        stats.queue_len(),
    );
    e.gauge_with(
        "lmkg_queue_capacity",
        "Configured admission-queue capacity (the tenant's quota)",
        &scope,
        stats.queue_capacity() as i64,
    );

    e.gauge_with(
        "lmkg_model_bytes",
        "Memory footprint of the currently published model",
        &scope,
        snapshot.model_bytes as i64,
    );
    e.counter_with(
        "lmkg_retrains_total",
        "Adapter retrain events that published an extended model",
        &scope,
        snapshot.retrains,
    );
    e.counter_with(
        "lmkg_models_added_total",
        "Models added across all retrain events",
        &scope,
        snapshot.models_added,
    );
    e.gauge_f64_with(
        "lmkg_drift_tv",
        "Total-variation distance of the last drift evaluation",
        &scope,
        snapshot.drift_tv,
    );
    e.gauge_f64_with(
        "lmkg_drift_uncovered",
        "Uncovered-query share of the last drift evaluation",
        &scope,
        snapshot.drift_uncovered,
    );

    // Stage-level latency: one histogram family, one label value per stage
    // (the tenant scope, when present, prefixes each stage label).
    for (i, stage) in STAGE_NAMES.iter().enumerate() {
        let snap = stats.stages[i].snapshot();
        let label = format!("{scope}stage=\"{stage}\",");
        if i == 0 {
            e.histogram(
                "lmkg_stage_us",
                "Per-stage request latency breakdown, microseconds (admission/batch/forward/reply laps tile the request's life)",
                &label,
                &snap,
            );
        } else {
            e.histogram_samples("lmkg_stage_us", &label, &snap);
        }
    }
    e.histogram(
        "lmkg_batch_size",
        "Requests coalesced per batched forward",
        &scope,
        &stats.batch_size.snapshot(),
    );
    e.histogram(
        "lmkg_request_latency_window_us",
        "Submit-to-reply latency of the most recent requests (sliding window), microseconds",
        &scope,
        &stats.window_snapshot(),
    );
    e.histogram(
        "lmkg_retrain_duration_us",
        "Wall-clock duration of adapter retrain cycles, microseconds",
        &scope,
        &stats.retrain_us.snapshot(),
    );

    if tenant.is_none() {
        // lmkg-nn's process-global profiling counters. Process-wide by
        // design: training, adaptation, and serving for every tenant all
        // flow through the same GEMM core — so these render only in the
        // unlabeled exposition, never under a tenant label.
        let profile = lmkg_nn::profile::snapshot();
        let dispatch: Vec<(String, u64)> = profile
            .dispatch_rows()
            .iter()
            .map(|(path, kernel, n)| (format!("{{path=\"{path}\",kernel=\"{kernel}\"}}"), *n))
            .collect();
        e.counter_family(
            "lmkg_kernel_dispatch_total",
            "Auto-dispatched serial matmuls by compute path (gemv fast path vs blocked packed core) and kernel",
            &dispatch,
        );
        e.counter(
            "lmkg_kernel_flops_total",
            "Floating-point operations issued by auto-dispatched matmuls (2*m*k*n each)",
            profile.flops,
        );
        e.gauge(
            "lmkg_workspace_high_water_bytes",
            "Largest buffer-pool footprint any single inference workspace has grown to",
            profile.workspace_high_water_bytes as i64,
        );
        e.raw_line(&format!(
            "# HELP lmkg_kernel_active The runtime-dispatched kernel ({})",
            lmkg_nn::gemm::active_kernel().name()
        ));
    }

    e.events_with("lmkg", &scope, stats.events());
    e.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batcher::{BatchConfig, Job, MicroBatcher};
    use crate::protocol::Reply;
    use lmkg::CardinalityEstimator;
    use lmkg_store::{NodeTerm, PredTerm, Query, TriplePattern, VarId};
    use std::sync::{mpsc, Arc};
    use std::time::Duration;

    struct One;
    impl CardinalityEstimator for One {
        fn name(&self) -> &str {
            "one"
        }
        fn estimate(&self, _q: &Query) -> f64 {
            1.0
        }
        fn memory_bytes(&self) -> usize {
            64
        }
    }

    fn tiny_query() -> Query {
        Query::new(vec![TriplePattern::new(
            NodeTerm::Var(VarId(0)),
            PredTerm::Bound(lmkg_store::PredId(0)),
            NodeTerm::Var(VarId(1)),
        )])
    }

    /// Serve a few requests through an instrumented batcher and check the
    /// exposition carries every series family.
    #[test]
    fn exposition_covers_all_series_families() {
        let batcher = MicroBatcher::start(
            Arc::new(One),
            BatchConfig {
                window: Duration::from_millis(1),
                max_batch: 4,
                queue_depth: 64,
                workers: 2,
                obs: true,
            },
        );
        let (tx, rx) = mpsc::channel();
        for i in 0..6 {
            batcher
                .submit(Job::new(format!("q{i}"), tiny_query(), tx.clone()))
                .unwrap();
        }
        for _ in 0..6 {
            rx.recv_timeout(Duration::from_secs(5)).unwrap();
        }
        let stats = batcher.stats();
        stats.note_parse_error("EST with no id");
        stats.note_session_start();

        let text = render_metrics(&stats);
        for needle in [
            "# TYPE lmkg_requests_served_total counter",
            "lmkg_requests_served_total 6",
            "lmkg_parse_errors_total 1",
            "lmkg_sessions_active 1",
            "lmkg_queue_capacity 64",
            "lmkg_stage_us_bucket{stage=\"admission\",le=",
            "lmkg_stage_us_count{stage=\"batch\"}",
            "lmkg_stage_us_count{stage=\"forward\"} ",
            "lmkg_stage_us_count{stage=\"reply\"} ",
            "lmkg_batch_size_count ",
            "lmkg_request_latency_window_us_count 6",
            "lmkg_kernel_dispatch_total{path=\"gemv\",kernel=\"scalar\"}",
            "lmkg_kernel_flops_total",
            "lmkg_workspace_high_water_bytes",
            "lmkg_events_total{kind=\"shed\"} 0",
            "lmkg_events_total{kind=\"parse_error\"} 1",
            "# EVENTS",
        ] {
            assert!(text.contains(needle), "exposition missing {needle:?}\n---\n{text}");
        }
        assert!(!text.contains("# EOF"), "the protocol layer owns the terminator");

        // Every forward ran under obs: the four stage families all saw
        // samples, and their counts agree where the pipeline implies it.
        let forward_count: u64 = text
            .lines()
            .find(|l| l.starts_with("lmkg_stage_us_count{stage=\"forward\"}"))
            .and_then(|l| l.rsplit(' ').next())
            .and_then(|v| v.parse().ok())
            .unwrap();
        assert!(forward_count >= 1, "forward stage recorded no batches");

        // The exposition is parseable line-by-line: every non-comment line
        // is `name{labels} value` with a numeric value.
        for line in text.lines() {
            if line.starts_with('#') || line.is_empty() {
                continue;
            }
            let (_, value) = line.rsplit_once(' ').expect("sample line has a value");
            assert!(value.parse::<f64>().is_ok(), "unparseable sample value in {line:?}");
        }

        // A METRICS reply wraps this text with the framing header and EOF.
        let reply = Reply::Metrics { id: "m".into(), text };
        let wire = reply.to_string();
        assert!(wire.starts_with("METRICS m lines="));
        assert!(wire.ends_with("# EOF"));
    }

    /// The per-tenant exposition labels every series with `tenant="…"` and
    /// omits the process-global kernel-profile section (those counters are
    /// shared across tenants).
    #[test]
    fn tenant_exposition_labels_every_series() {
        let batcher = MicroBatcher::start(
            Arc::new(One),
            BatchConfig {
                window: Duration::from_millis(1),
                max_batch: 4,
                queue_depth: 64,
                workers: 1,
                obs: true,
            },
        );
        let (tx, rx) = mpsc::channel();
        batcher.submit(Job::new("q0".into(), tiny_query(), tx.clone())).unwrap();
        rx.recv_timeout(Duration::from_secs(5)).unwrap();

        let text = render_metrics_for(Some("lubm"), &batcher.stats());
        for needle in [
            "lmkg_requests_served_total{tenant=\"lubm\"} 1",
            "lmkg_queue_capacity{tenant=\"lubm\"} 64",
            "lmkg_stage_us_bucket{tenant=\"lubm\",stage=\"forward\",le=",
            "lmkg_stage_us_count{tenant=\"lubm\",stage=\"reply\"}",
            "lmkg_batch_size_count{tenant=\"lubm\"} 1",
            "lmkg_request_latency_window_us_count{tenant=\"lubm\"} 1",
            "lmkg_events_total{tenant=\"lubm\",kind=\"shed\"} 0",
        ] {
            assert!(
                text.contains(needle),
                "labeled exposition missing {needle:?}\n---\n{text}"
            );
        }
        // Every real sample line (not a comment) carries the tenant label.
        for line in text.lines() {
            if line.starts_with('#') || line.is_empty() {
                continue;
            }
            assert!(
                line.contains("tenant=\"lubm\""),
                "unlabeled sample in tenant exposition: {line:?}"
            );
        }
        // Kernel profiling is process-global — unlabeled exposition only.
        assert!(!text.contains("lmkg_kernel_dispatch_total"));
        assert!(!text.contains("lmkg_kernel_active"));
        assert!(render_metrics(&batcher.stats()).contains("lmkg_kernel_flops_total"));
    }

    /// With obs off, stage histograms stay empty but the exposition still
    /// renders (counters, events, kernel profile).
    #[test]
    fn no_obs_exposition_has_empty_stages() {
        let batcher = MicroBatcher::start(
            Arc::new(One),
            BatchConfig {
                obs: false,
                ..BatchConfig::default()
            },
        );
        let (tx, rx) = mpsc::channel();
        batcher.submit(Job::new("q0".into(), tiny_query(), tx.clone())).unwrap();
        rx.recv_timeout(Duration::from_secs(5)).unwrap();
        let text = render_metrics(&batcher.stats());
        assert!(text.contains("lmkg_requests_served_total 1"));
        assert!(text.contains("lmkg_stage_us_count{stage=\"forward\"} 0"));
        assert!(
            text.contains("lmkg_request_latency_window_us_count 1"),
            "the latency window is not gated by obs"
        );
    }
}
