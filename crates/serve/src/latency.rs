//! Streaming latency percentiles: a fixed-capacity sliding window of the
//! most recent per-request latencies, summarized as p50/p95/p99 on demand.
//!
//! The window keeps recency semantics (exactly the last *N* requests count,
//! older ones are forgotten) but stores each sample as its [`lmkg_obs`]
//! log-bucket index rather than its raw value: a `u16` ring for eviction
//! order plus a fixed bucket-count array. Recording is O(1), and
//! summarizing walks the fixed bucket array — O(buckets), not the
//! O(N log N) sort-a-copy the first implementation paid per scrape. The
//! price is resolution: a reported percentile is the upper bound of the
//! bucket holding the exact rank, at most
//! [`lmkg_obs::RELATIVE_ERROR_BOUND`] (≈9.05%) above the exact sample value
//! (with sub-microsecond samples floored to 1µs).

use std::collections::VecDeque;
use std::fmt;

use lmkg_obs::hist::{bucket_bound, bucket_index, HistSnapshot, NUM_BUCKETS};

/// Nearest-rank percentile of an ascending-sorted slice. `p` is in percent
/// (e.g. `99.0`). Returns 0.0 for an empty slice. This is the *exact*
/// reference used by the load generator's offline reports, where the full
/// sample vector is already in hand.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// A bounded window of the most recent latency samples (microseconds),
/// bucketed on ingest.
#[derive(Debug)]
pub struct SlidingWindow {
    cap: usize,
    ring: VecDeque<u16>,
    counts: Vec<u32>,
}

impl SlidingWindow {
    /// Creates a window retaining the last `cap` samples.
    pub fn new(cap: usize) -> Self {
        assert!(cap >= 1, "window capacity must be positive");
        Self {
            cap,
            ring: VecDeque::with_capacity(cap),
            counts: vec![0; NUM_BUCKETS],
        }
    }

    /// Records one sample, evicting the oldest when full. O(1): one bucket
    /// lookup, one ring push, two array updates.
    pub fn record(&mut self, micros: f64) {
        if self.ring.len() == self.cap {
            if let Some(evicted) = self.ring.pop_front() {
                self.counts[evicted as usize] -= 1;
            }
        }
        let idx = bucket_index(micros) as u16;
        self.ring.push_back(idx);
        self.counts[idx as usize] += 1;
    }

    /// Number of samples currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether no sample has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// (p50, p95, p99) over the current window, in microseconds. One walk
    /// over the fixed bucket array resolves all three ranks.
    pub fn percentiles(&self) -> (f64, f64, f64) {
        let n = self.ring.len() as u64;
        if n == 0 {
            return (0.0, 0.0, 0.0);
        }
        let rank = |p: f64| (((p / 100.0) * n as f64).ceil() as u64).clamp(1, n);
        let (r50, r95, r99) = (rank(50.0), rank(95.0), rank(99.0));
        let (mut p50, mut p95, mut p99) = (None, None, None);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            seen += c as u64;
            let bound = bucket_bound(i);
            if p50.is_none() && seen >= r50 {
                p50 = Some(bound);
            }
            if p95.is_none() && seen >= r95 {
                p95 = Some(bound);
            }
            if p99.is_none() && seen >= r99 {
                p99 = Some(bound);
                break;
            }
        }
        let last = bucket_bound(NUM_BUCKETS - 1);
        (p50.unwrap_or(last), p95.unwrap_or(last), p99.unwrap_or(last))
    }

    /// The window's bucket counts as a mergeable snapshot (for the METRICS
    /// exposition, which renders the recent-window latency distribution as
    /// a histogram). `sum` is approximated from bucket bounds — the raw
    /// values are not retained.
    pub fn snapshot(&self) -> HistSnapshot {
        let mut sum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            sum += (bucket_bound(i) as u64).saturating_mul(c as u64);
        }
        HistSnapshot {
            buckets: self.counts.iter().map(|&c| c as u64).collect(),
            count: self.ring.len() as u64,
            sum,
        }
    }
}

/// A point-in-time summary of a serving run: request counters plus the
/// latency percentiles of the sliding window. This is what a `STATS` request
/// returns and what the server prints at shutdown.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StatsSnapshot {
    /// Requests answered with an estimate.
    pub served: u64,
    /// Requests shed by admission control (queue full).
    pub shed: u64,
    /// Batched forwards executed (`served / batches` = mean batch size).
    pub batches: u64,
    /// Retrain events: times the adapter published an extended model set.
    pub retrains: u64,
    /// Models added across all retrain events.
    pub models_added: u64,
    /// Models evicted to stay under the tenant's memory budget.
    pub evicted: u64,
    /// Generation of the last model-store snapshot published for this
    /// tenant (0 when the tenant has no store, or before the first publish).
    pub generation: u64,
    /// Memory footprint of the currently published model, bytes — reflects
    /// quantized deployments honestly (it shrinks when a quantized framework
    /// is served) and follows adapter swaps.
    pub model_bytes: u64,
    /// Total-variation distance of the last drift evaluation (0 before one).
    pub drift_tv: f64,
    /// Uncovered-query share of the last drift evaluation (0 before one).
    pub drift_uncovered: f64,
    /// Median latency over the window, microseconds (log-bucket resolution).
    pub p50_us: f64,
    /// 95th-percentile latency over the window, microseconds (log-bucket
    /// resolution).
    pub p95_us: f64,
    /// 99th-percentile latency over the window, microseconds (log-bucket
    /// resolution).
    pub p99_us: f64,
}

impl fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "served={} shed={} batches={} retrains={} added={} evicted={} gen={} model={} tv={} uncovered={} p50us={} p95us={} p99us={}",
            self.served,
            self.shed,
            self.batches,
            self.retrains,
            self.models_added,
            self.evicted,
            self.generation,
            self.model_bytes,
            self.drift_tv,
            self.drift_uncovered,
            self.p50_us,
            self.p95_us,
            self.p99_us
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmkg_obs::RELATIVE_ERROR_BOUND;

    /// Reported percentile must bracket the exact value from above within
    /// one bucket's relative error (exact values ≤ 1µs floor to 1.0).
    fn assert_within_bucket(reported: f64, exact: f64) {
        let exact = exact.max(1.0);
        assert!(reported >= exact, "reported {reported} < exact {exact}");
        assert!(
            reported <= exact * (1.0 + RELATIVE_ERROR_BOUND),
            "reported {reported} exceeds exact {exact} by more than one bucket"
        );
    }

    #[test]
    fn percentile_nearest_rank() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&v, 50.0), 50.0);
        assert_eq!(percentile(&v, 95.0), 95.0);
        assert_eq!(percentile(&v, 99.0), 99.0);
        assert_eq!(percentile(&v, 100.0), 100.0);
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[7.5], 99.0), 7.5);
    }

    #[test]
    fn window_slides() {
        let mut w = SlidingWindow::new(3);
        assert!(w.is_empty());
        for x in [1.0, 2.0, 3.0, 4.0] {
            w.record(x);
        }
        // 1.0 evicted: window = [2, 3, 4]; exact p50 is 3.0, p95/p99 are 4.0.
        assert_eq!(w.len(), 3);
        let (p50, p95, p99) = w.percentiles();
        assert_within_bucket(p50, 3.0);
        assert_within_bucket(p95, 4.0);
        assert_within_bucket(p99, 4.0);
        assert!(p50 <= p95 && p95 <= p99);
    }

    #[test]
    fn window_percentiles_track_exact_within_error_bound() {
        let mut w = SlidingWindow::new(256);
        let mut samples: Vec<f64> = Vec::new();
        // A skewed stream with the head shifted out of the window.
        for i in 0..400 {
            let v = 1.0 + (i % 97) as f64 * 13.7 + if i % 50 == 0 { 5000.0 } else { 0.0 };
            w.record(v);
            samples.push(v);
        }
        let recent = &samples[samples.len() - 256..];
        let mut sorted = recent.to_vec();
        sorted.sort_by(f64::total_cmp);
        let (p50, p95, p99) = w.percentiles();
        assert_within_bucket(p50, percentile(&sorted, 50.0));
        assert_within_bucket(p95, percentile(&sorted, 95.0));
        assert_within_bucket(p99, percentile(&sorted, 99.0));
    }

    #[test]
    fn window_snapshot_counts_match() {
        let mut w = SlidingWindow::new(4);
        for x in [10.0, 20.0, 30.0, 40.0, 50.0] {
            w.record(x);
        }
        let s = w.snapshot();
        assert_eq!(s.count, 4, "eviction must be reflected in the snapshot");
        assert_eq!(s.buckets.iter().sum::<u64>(), 4);
    }

    #[test]
    fn snapshot_displays_all_fields() {
        let s = StatsSnapshot {
            served: 10,
            shed: 2,
            batches: 3,
            retrains: 1,
            models_added: 2,
            evicted: 4,
            generation: 6,
            model_bytes: 4096,
            drift_tv: 0.75,
            drift_uncovered: 0.5,
            p50_us: 1.5,
            p95_us: 2.5,
            p99_us: 3.5,
        };
        assert_eq!(
            s.to_string(),
            "served=10 shed=2 batches=3 retrains=1 added=2 evicted=4 gen=6 model=4096 tv=0.75 uncovered=0.5 p50us=1.5 p95us=2.5 p99us=3.5"
        );
    }
}
