//! Streaming latency percentiles: a fixed-capacity sliding window of the
//! most recent per-request latencies, summarized as p50/p95/p99 on demand.
//!
//! The window is the standard serving-telemetry compromise: exact
//! percentiles over the last *N* requests (not an approximation sketch, and
//! not an ever-growing history that forgets nothing and answers about the
//! distant past). Summarizing sorts a copy of the window — O(N log N) on a
//! few thousand floats — which only happens when someone asks (`STATS`
//! request, shutdown report), never on the request path.

use std::collections::VecDeque;
use std::fmt;

/// Nearest-rank percentile of an ascending-sorted slice. `p` is in percent
/// (e.g. `99.0`). Returns 0.0 for an empty slice.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// A bounded window of the most recent latency samples (microseconds).
#[derive(Debug)]
pub struct SlidingWindow {
    cap: usize,
    buf: VecDeque<f64>,
}

impl SlidingWindow {
    /// Creates a window retaining the last `cap` samples.
    pub fn new(cap: usize) -> Self {
        assert!(cap >= 1, "window capacity must be positive");
        Self {
            cap,
            buf: VecDeque::with_capacity(cap),
        }
    }

    /// Records one sample, evicting the oldest when full.
    pub fn record(&mut self, micros: f64) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
        }
        self.buf.push_back(micros);
    }

    /// Number of samples currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether no sample has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// (p50, p95, p99) over the current window, in microseconds.
    pub fn percentiles(&self) -> (f64, f64, f64) {
        let mut sorted: Vec<f64> = self.buf.iter().copied().collect();
        sorted.sort_by(f64::total_cmp);
        (
            percentile(&sorted, 50.0),
            percentile(&sorted, 95.0),
            percentile(&sorted, 99.0),
        )
    }
}

/// A point-in-time summary of a serving run: request counters plus the
/// latency percentiles of the sliding window. This is what a `STATS` request
/// returns and what the server prints at shutdown.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StatsSnapshot {
    /// Requests answered with an estimate.
    pub served: u64,
    /// Requests shed by admission control (queue full).
    pub shed: u64,
    /// Batched forwards executed (`served / batches` = mean batch size).
    pub batches: u64,
    /// Retrain events: times the adapter published an extended model set.
    pub retrains: u64,
    /// Models added across all retrain events.
    pub models_added: u64,
    /// Memory footprint of the currently published model, bytes — reflects
    /// quantized deployments honestly (it shrinks when a quantized framework
    /// is served) and follows adapter swaps.
    pub model_bytes: u64,
    /// Total-variation distance of the last drift evaluation (0 before one).
    pub drift_tv: f64,
    /// Uncovered-query share of the last drift evaluation (0 before one).
    pub drift_uncovered: f64,
    /// Median latency over the window, microseconds.
    pub p50_us: f64,
    /// 95th-percentile latency over the window, microseconds.
    pub p95_us: f64,
    /// 99th-percentile latency over the window, microseconds.
    pub p99_us: f64,
}

impl fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "served={} shed={} batches={} retrains={} added={} model={} tv={} uncovered={} p50us={} p95us={} p99us={}",
            self.served,
            self.shed,
            self.batches,
            self.retrains,
            self.models_added,
            self.model_bytes,
            self.drift_tv,
            self.drift_uncovered,
            self.p50_us,
            self.p95_us,
            self.p99_us
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&v, 50.0), 50.0);
        assert_eq!(percentile(&v, 95.0), 95.0);
        assert_eq!(percentile(&v, 99.0), 99.0);
        assert_eq!(percentile(&v, 100.0), 100.0);
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[7.5], 99.0), 7.5);
    }

    #[test]
    fn window_slides() {
        let mut w = SlidingWindow::new(3);
        assert!(w.is_empty());
        for x in [1.0, 2.0, 3.0, 4.0] {
            w.record(x);
        }
        // 1.0 evicted: window = [2, 3, 4].
        assert_eq!(w.len(), 3);
        let (p50, p95, p99) = w.percentiles();
        assert_eq!(p50, 3.0);
        assert_eq!(p95, 4.0);
        assert_eq!(p99, 4.0);
    }

    #[test]
    fn snapshot_displays_all_fields() {
        let s = StatsSnapshot {
            served: 10,
            shed: 2,
            batches: 3,
            retrains: 1,
            models_added: 2,
            model_bytes: 4096,
            drift_tv: 0.75,
            drift_uncovered: 0.5,
            p50_us: 1.5,
            p95_us: 2.5,
            p99_us: 3.5,
        };
        assert_eq!(
            s.to_string(),
            "served=10 shed=2 batches=3 retrains=1 added=2 model=4096 tv=0.75 uncovered=0.5 p50us=1.5 p95us=2.5 p99us=3.5"
        );
    }
}
