//! The online adaptation loop: monitor → retrain → swap, under live traffic.
//!
//! The paper's execution phase (§IV, Model choice) calls for exactly this:
//! "If a change in the workload of queries is detected during the execution
//! phase, a new model may be created". The pieces have existed separately —
//! `WorkloadMonitor` detects the change, `Lmkg::extend` creates the missing
//! models, `ModelHandle::swap` publishes atomically — and this module is the
//! thread that closes the loop:
//!
//! 1. the batcher records every admitted query's `(shape, size)` cell into a
//!    [`SharedMonitor`](crate::batcher::SharedMonitor);
//! 2. the adapter thread wakes every [`AdapterConfig::interval`], pulls a
//!    [`DriftReport`](lmkg::DriftReport), and records it in the serving
//!    stats (`STATS … tv=… uncovered=…`);
//! 3. when `should_retrain` fires, it trains models for the dominant
//!    *uncovered* cells via [`Lmkg::extend`] — existing entries are reused
//!    by reference, only the missing cells train, on scoped threads — while
//!    the workers keep serving the old snapshot;
//! 4. the extended framework is published with
//!    [`ModelHandle::swap`](crate::batcher::ModelHandle::swap): in-flight
//!    batches finish on the model they already resolved, the next batch sees
//!    the new one. No request is dropped, no batch is torn.
//!
//! One adapter thread serves *all* tenants of a multi-tenant service
//! ([`Adapter::start_multi`]): each tick it walks the tenant list, evaluates
//! each tenant's own monitor against that tenant's current framework, and
//! swaps each tenant's [`ModelHandle`] independently — retraining tenant A
//! never pauses serving (or adaptation bookkeeping) for tenant B, because
//! the workers never block on the adapter in the first place.
//!
//! Training happens on the adapter thread (plus the scoped training threads
//! `Lmkg::extend` spawns), never on a worker — the estimation path stays
//! lock-free and swap-latency is one `RwLock` write for the pointer, not the
//! training time.

use crate::batcher::{BatchConfig, ModelHandle, ServeStats, SharedEstimator, SharedMonitor};
use crate::protocol::DEFAULT_TENANT;
use crate::server::{EstimationService, ServeBuilder, TenantSpec};
use lmkg::framework::{trainable_cell, Lmkg, LmkgConfig};
use lmkg::{CardinalityEstimator, Cell, WorkloadMonitor};
use lmkg_modelstore::ModelStore;
use lmkg_obs::Level;
use lmkg_store::KnowledgeGraph;
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Knobs of the adaptation loop.
#[derive(Debug, Clone)]
pub struct AdapterConfig {
    /// How often the adapter evaluates drift.
    pub interval: Duration,
    /// Sliding-window size of the workload monitor (observed queries).
    pub window: usize,
    /// Minimum observed queries before drift is evaluated at all — a cold
    /// window says nothing about the workload.
    pub min_observed: usize,
    /// Total-variation threshold of `DriftReport::should_retrain`.
    pub tv_threshold: f64,
    /// Uncovered-share threshold of `DriftReport::should_retrain`.
    pub uncovered_threshold: f64,
    /// Hard cap on the total model count; cells beyond it are not trained.
    pub max_models: usize,
    /// At most this many new models per retrain event, taken from the head
    /// of `dominant_cells` — the rest wait for the next tick, so one burst
    /// of exotic queries cannot monopolize the adapter.
    pub max_new_per_cycle: usize,
}

impl Default for AdapterConfig {
    fn default() -> Self {
        Self {
            interval: Duration::from_millis(500),
            window: 512,
            min_observed: 64,
            tv_threshold: 0.3,
            uncovered_threshold: 0.2,
            max_models: 32,
            max_new_per_cycle: 4,
        }
    }
}

/// Everything the adapter needs to run one tenant's adaptation loop:
/// the tenant's graph, the framework its batcher currently serves,
/// the configuration it was built with (extensions train with its
/// hyperparameters and budget), and the tenant's serving seams — model
/// handle, monitor, stats (see
/// [`EstimationService::tenant_model`] et al.).
pub struct TenantAdapterSpec {
    /// The namespace this loop adapts (drives the event prefix: the
    /// `default` tenant logs plain `adapter:` lines, others
    /// `adapter[name]:`).
    pub name: String,
    /// The tenant's graph, queried when training extension models.
    pub graph: Arc<KnowledgeGraph>,
    /// The framework the tenant's batcher currently serves.
    pub base: Arc<Lmkg>,
    /// The configuration `base` was built with.
    pub build_cfg: LmkgConfig,
    /// The tenant's swappable model slot.
    pub handle: Arc<ModelHandle>,
    /// The monitor the tenant's admission path observes into.
    pub monitor: SharedMonitor,
    /// The tenant's counter block (drift gauges, retrain events).
    pub stats: Arc<ServeStats>,
    /// Where retrained (and evicted) model sets are persisted after each
    /// publish, so a restart cold-starts from the adapted state instead of
    /// the cold base. `None` disables persistence.
    pub store: Option<ModelStore>,
    /// Upper bound on the published framework's `total_memory_bytes`.
    /// After every publish — and on every tick, in case retraining pushed
    /// past it — the adapter evicts least-used covered cells until the set
    /// fits (see [`Lmkg::evict_to_budget`]). `None` disables eviction.
    pub memory_budget: Option<usize>,
}

/// One tenant's mutable loop state, private to the adapter thread.
struct TenantState {
    spec: TenantAdapterSpec,
    /// `"adapter:"` for the default tenant (pre-multi-tenant event format),
    /// `"adapter[name]:"` otherwise.
    prefix: String,
    current: Arc<Lmkg>,
    /// Cells that were selected but yielded no model (e.g. the LMKG-U
    /// domain guard): never re-attempted, or a persistent exotic workload
    /// would make every tick a futile training run.
    failed: HashSet<Cell>,
}

/// The `(tenant name, most recently published framework)` slots the adapter
/// thread writes and [`Adapter::current_for`] reads.
type CurrentSlots = RwLock<Vec<(String, Arc<Lmkg>)>>;

/// The background adaptation thread. Dropping it (or calling
/// [`Adapter::stop`]) signals the loop and joins it — never mid-swap, since
/// the stop flag is only checked between whole tenant iterations.
pub struct Adapter {
    stop: Arc<AtomicBool>,
    current: Arc<CurrentSlots>,
    thread: Option<JoinHandle<()>>,
}

impl Adapter {
    /// Spawns the adaptation loop over a single-tenant serving setup:
    /// `base` must be the same framework the batcher's `handle` currently
    /// serves, `monitor` the one its admission path observes into, `stats`
    /// its counter block
    /// ([`crate::server::EstimationService::serve_stats`]). `build_cfg` is
    /// the configuration the base was built with — extensions train with
    /// its hyperparameters and budget.
    pub fn start(
        graph: Arc<KnowledgeGraph>,
        base: Arc<Lmkg>,
        build_cfg: LmkgConfig,
        handle: Arc<ModelHandle>,
        monitor: SharedMonitor,
        stats: Arc<ServeStats>,
        cfg: AdapterConfig,
    ) -> Self {
        Self::start_multi(
            vec![TenantAdapterSpec {
                name: DEFAULT_TENANT.into(),
                graph,
                base,
                build_cfg,
                handle,
                monitor,
                stats,
                store: None,
                memory_budget: None,
            }],
            cfg,
        )
    }

    /// Spawns one adaptation thread over many tenants. Each tick walks the
    /// tenant list in order: every tenant's monitor is evaluated against
    /// that tenant's current framework, and each tenant's `ModelHandle` is
    /// swapped independently — live traffic on the other tenants keeps
    /// flowing (and keeps being answered) while one tenant trains.
    pub fn start_multi(specs: Vec<TenantAdapterSpec>, cfg: AdapterConfig) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let current = Arc::new(RwLock::new(
            specs
                .iter()
                .map(|s| (s.name.clone(), Arc::clone(&s.base)))
                .collect::<Vec<_>>(),
        ));
        let mut tenants: Vec<TenantState> = specs
            .into_iter()
            .map(|spec| TenantState {
                prefix: if spec.name == DEFAULT_TENANT {
                    "adapter:".into()
                } else {
                    format!("adapter[{}]:", spec.name)
                },
                current: Arc::clone(&spec.base),
                failed: HashSet::new(),
                spec,
            })
            .collect();
        let thread = {
            let stop = Arc::clone(&stop);
            let current = Arc::clone(&current);
            std::thread::Builder::new()
                .name("lmkg-serve-adapter".into())
                .spawn(move || adapter_loop(&mut tenants, &cfg, &stop, &current))
                .expect("spawn adapter thread")
        };
        Self {
            stop,
            current,
            thread: Some(thread),
        }
    }

    /// The framework the adapter most recently published for `name` (the
    /// tenant's base until its first retrain), or `None` for a tenant the
    /// adapter does not drive. Unlike `ModelHandle::current`, this is the
    /// concrete `Lmkg`, so callers can ask `covers` questions.
    pub fn current_for(&self, name: &str) -> Option<Arc<Lmkg>> {
        self.current
            .read()
            .expect("adapter current lock")
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, model)| Arc::clone(model))
    }

    /// The first tenant's most recently published framework — for a
    /// single-tenant adapter, *the* framework.
    pub fn current(&self) -> Arc<Lmkg> {
        Arc::clone(&self.current.read().expect("adapter current lock")[0].1)
    }

    /// Signals the loop and joins the thread, returning the first tenant's
    /// final published framework.
    pub fn stop(mut self) -> Arc<Lmkg> {
        self.halt();
        self.current()
    }

    fn halt(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for Adapter {
    fn drop(&mut self) {
        self.halt();
    }
}

/// Builds the complete adaptive serving setup in one call: a workload
/// monitor over `build_cfg`'s trained cells wired into the service's
/// admission path, and the running adapter thread over the service's model
/// handle and stats. The `serve` binary and the loadgen shift benchmark
/// both go through here, so the wiring cannot diverge between them.
pub fn adaptive_service(
    graph: &Arc<KnowledgeGraph>,
    base: &Arc<Lmkg>,
    build_cfg: &LmkgConfig,
    batch: BatchConfig,
    cfg: AdapterConfig,
) -> (EstimationService, Adapter) {
    let monitor: SharedMonitor = Arc::new(Mutex::new(WorkloadMonitor::new(cfg.window, &build_cfg.cells())));
    let svc = ServeBuilder::new()
        .batch(batch)
        .tenant(
            TenantSpec::new(DEFAULT_TENANT, Arc::clone(graph), Arc::clone(base) as SharedEstimator)
                .observed(Arc::clone(&monitor)),
        )
        .build()
        .expect("a single default tenant always builds");
    let adapter = Adapter::start(
        Arc::clone(graph),
        Arc::clone(base),
        build_cfg.clone(),
        svc.model(),
        monitor,
        svc.serve_stats(),
        cfg,
    );
    (svc, adapter)
}

fn adapter_loop(tenants: &mut [TenantState], cfg: &AdapterConfig, stop: &AtomicBool, current_slot: &CurrentSlots) {
    while !stop.load(Ordering::SeqCst) {
        // Sleep in short slices so stop() never waits out a long interval.
        let wake = Instant::now() + cfg.interval;
        while Instant::now() < wake {
            if stop.load(Ordering::SeqCst) {
                return;
            }
            std::thread::sleep(cfg.interval.min(Duration::from_millis(20)));
        }

        for (idx, tenant) in tenants.iter_mut().enumerate() {
            if stop.load(Ordering::SeqCst) {
                return;
            }
            tenant_tick(tenant, idx, cfg, current_slot);
        }
    }
}

/// One tenant's adaptation iteration: drift-evaluate / retrain / swap, then
/// budget enforcement (eviction), then persistence — whatever was published
/// this tick (by either stage) is snapshotted to the tenant's model store.
fn tenant_tick(tenant: &mut TenantState, idx: usize, cfg: &AdapterConfig, current_slot: &CurrentSlots) {
    let retrained = maybe_retrain(tenant, idx, cfg, current_slot);
    let evicted = enforce_budget(tenant, idx, current_slot);
    if retrained || evicted {
        persist(tenant);
    }
}

/// The drift-evaluate / retrain / swap stage. Returns whether a new
/// framework was published.
fn maybe_retrain(tenant: &mut TenantState, idx: usize, cfg: &AdapterConfig, current_slot: &CurrentSlots) -> bool {
    let spec = &tenant.spec;
    let prefix = &tenant.prefix;
    let report = {
        let m = spec.monitor.lock().expect("workload monitor lock");
        if m.observed() < cfg.min_observed {
            return false;
        }
        let model = &tenant.current;
        m.report(|(shape, size)| model.covers(shape, size))
    };
    spec.stats.note_drift(report.tv_distance, report.uncovered_share);
    if !report.should_retrain(cfg.tv_threshold, cfg.uncovered_threshold) {
        return false;
    }

    let budget = cfg
        .max_models
        .saturating_sub(tenant.current.model_count())
        .min(cfg.max_new_per_cycle);
    let cells: Vec<Cell> = report
        .dominant_cells
        .iter()
        .map(|&(cell, _)| cell)
        .filter(|&cell| {
            trainable_cell(cell) && !tenant.failed.contains(&cell) && !tenant.current.covers(cell.0, cell.1)
        })
        .take(budget)
        .collect();
    if cells.is_empty() {
        // Drift without a trainable target (pure mix shift over covered
        // cells, exotic shapes, or the model cap): nothing to create.
        return false;
    }

    // The dominant cells with their observed query counts, e.g.
    // `(star, 4)×37` — the drift event carries how much of the window
    // each selected cell accounted for.
    let cell_counts: Vec<String> = cells
        .iter()
        .map(|&(shape, size)| {
            let observed = report
                .dominant_cells
                .iter()
                .find(|&&(cell, _)| cell == (shape, size))
                .map_or(0, |&(_, k)| k);
            format!("({shape}, {size})\u{d7}{observed}")
        })
        .collect();
    spec.stats.event(
        Level::Info,
        "drift",
        format!(
            "{prefix} drift tv={:.3} uncovered={:.3} over {} queries — training {} model(s) for [{}]",
            report.tv_distance,
            report.uncovered_share,
            report.dominant_cells.iter().map(|&(_, k)| k).sum::<usize>(),
            cells.len(),
            cell_counts.join(", ")
        ),
    );
    let t0 = Instant::now();
    let extended = Arc::new(tenant.current.extend(&spec.graph, &cells, &spec.build_cfg));
    let train_time = t0.elapsed();
    let added = extended.model_count().saturating_sub(tenant.current.model_count());
    // Publish first, then bump the retrain counter: a SeqCst read of
    // `retrains` therefore implies later batches resolve the new model.
    spec.handle.swap(Arc::clone(&extended) as SharedEstimator);
    current_slot.write().expect("adapter current lock")[idx].1 = Arc::clone(&extended);
    spec.stats.note_model_bytes(extended.memory_bytes() as u64);
    spec.stats.note_retrain(added);
    spec.stats.note_retrain_duration(train_time);
    spec.stats.event(
        Level::Info,
        "swap",
        format!(
            "{prefix} swapped in extended model of {} bytes under live traffic",
            extended.memory_bytes()
        ),
    );
    for &(shape, size) in &cells {
        if extended.covers(shape, size) {
            spec.stats.event(
                Level::Info,
                "retrain",
                format!("{prefix} cell ({shape}, {size}) now covered — direct model, no decomposition fallback"),
            );
        } else {
            tenant.failed.insert((shape, size));
            spec.stats.event(
                Level::Warn,
                "retrain",
                format!("{prefix} cell ({shape}, {size}) could not be trained; keeping the fallback path"),
            );
        }
    }
    spec.stats.event(
        Level::Info,
        "retrain",
        format!(
            "{prefix} published {} model(s) (+{added}) after {:.3}s of training, swap was atomic under live traffic",
            extended.model_count(),
            train_time.as_secs_f64()
        ),
    );
    tenant.current = extended;
    true
}

/// The memory-budget stage: when the published framework exceeds the
/// tenant's budget (a retrain just grew it, or the budget was set below the
/// base at startup), evict least-used covered cells until it fits and
/// publish the smaller set through the same atomic swap. Eviction never
/// uncovers a cell the current window observed (the fallback stays covered
/// for live traffic — see [`Lmkg::evict_to_budget`]), so it can legitimately
/// stop above budget under a workload that needs everything. Returns whether
/// a smaller framework was published.
fn enforce_budget(tenant: &mut TenantState, idx: usize, current_slot: &CurrentSlots) -> bool {
    let spec = &tenant.spec;
    let prefix = &tenant.prefix;
    let Some(budget) = spec.memory_budget else {
        return false;
    };
    if tenant.current.total_memory_bytes() <= budget {
        return false;
    }
    // Usage = the monitor's full per-cell counts (not just uncovered cells):
    // the victim order is workload share, and observed cells are pinned.
    let usage: Vec<(Cell, u64)> = {
        let m = spec.monitor.lock().expect("workload monitor lock");
        m.report(|_| true)
            .dominant_cells
            .iter()
            .map(|&(cell, count)| (cell, count as u64))
            .collect()
    };
    let (smaller, dropped) = tenant.current.evict_to_budget(budget, &usage);
    if dropped == 0 {
        // Everything left is the last cover of a live cell: respect the
        // workload over the budget rather than uncover live traffic.
        return false;
    }
    let smaller = Arc::new(smaller);
    spec.handle.swap(Arc::clone(&smaller) as SharedEstimator);
    current_slot.write().expect("adapter current lock")[idx].1 = Arc::clone(&smaller);
    spec.stats.note_model_bytes(smaller.memory_bytes() as u64);
    spec.stats.note_evicted(dropped);
    spec.stats.event(
        Level::Info,
        "evict",
        format!(
            "{prefix} evicted {dropped} model(s) — {} bytes now within the {budget}-byte budget ({} model(s) kept)",
            smaller.total_memory_bytes(),
            smaller.model_count()
        ),
    );
    tenant.current = smaller;
    true
}

/// The persistence stage: snapshot whatever `tenant.current` now is into the
/// tenant's model store, so a restart cold-starts from the adapted state.
/// Failure is an event, never a panic — serving continues on the in-memory
/// set and the next publish retries.
fn persist(tenant: &TenantState) {
    let spec = &tenant.spec;
    let prefix = &tenant.prefix;
    let Some(store) = &spec.store else {
        return;
    };
    match store.publish(&tenant.current) {
        Ok(generation) => {
            spec.stats.note_generation(generation);
            spec.stats.event(
                Level::Info,
                "save",
                format!(
                    "{prefix} persisted {} model(s) as generation {generation} in {}",
                    tenant.current.model_count(),
                    store.dir().display()
                ),
            );
        }
        Err(err) => {
            spec.stats.event(
                Level::Warn,
                "save",
                format!("{prefix} snapshot publish failed ({err}); serving continues on the in-memory set"),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmkg_store::QueryShape;

    #[test]
    fn trainable_filters_shapes_and_sizes() {
        assert!(trainable_cell((QueryShape::Star, 2)));
        assert!(trainable_cell((QueryShape::Chain, 8)));
        assert!(!trainable_cell((QueryShape::Star, 1)));
        assert!(!trainable_cell((QueryShape::Single, 1)));
        assert!(!trainable_cell((QueryShape::Other, 4)));
    }

    #[test]
    fn default_config_is_sane() {
        let cfg = AdapterConfig::default();
        assert!(cfg.interval > Duration::ZERO);
        assert!(cfg.min_observed <= cfg.window);
        assert!(cfg.max_new_per_cycle >= 1 && cfg.max_new_per_cycle <= cfg.max_models);
        assert!(cfg.tv_threshold > 0.0 && cfg.uncovered_threshold > 0.0);
    }
}
