//! The self-driving load generator: replays an `lmkg-data` workload through
//! the **full** serving path (request-line formatting → protocol parse →
//! admission → micro-batch → reply parse) at a target QPS, and produces the
//! closed-loop comparison the serving layer exists for — micro-batched vs
//! per-request serving of the same workload at the same offered load, with
//! throughput and p50/p95/p99 latency for each.
//!
//! The offered QPS can be fixed (`qps > 0`) or auto-calibrated: the
//! calibrator measures the estimator's direct per-query latency and offers
//! twice that service rate, so both serving modes run saturated and the
//! achieved throughput *is* each mode's service rate.
//!
//! [`shift`] is the closed-loop **adaptation** benchmark: a covered
//! baseline phase, then the workload jumps to an uncovered cell — served
//! through the decomposition fallback until the [`crate::Adapter`] retrains
//! and swaps — then the same shifted workload again on the published model.
//! Before/after-swap q-error (against exact counts) and latency land in
//! `BENCH_serve.json`. Workloads can also be replayed from files via
//! [`parse_workload`], which reports malformed lines with their line number
//! instead of panicking.

use crate::adapter::AdapterConfig;
use crate::batcher::{BatchConfig, SharedEstimator};
use crate::latency::percentile;
use crate::protocol::{Reply, Request, DEFAULT_TENANT};
use crate::server::{EstimationService, ServeBuilder, TenantSpec};
use lmkg::framework::{Lmkg, LmkgConfig};
use lmkg::{q_error, CardinalityEstimator};
use lmkg_modelstore::{ModelStore, StoreError};
use lmkg_store::{counter, sparql, KnowledgeGraph, Query, QueryShape};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Load-generation parameters.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Offered load in requests/second; `0.0` auto-calibrates to twice the
    /// estimator's direct per-query service rate.
    pub qps: f64,
    /// Requests per measured run.
    pub requests: usize,
    /// Unmeasured requests replayed before each run to warm caches.
    pub warmup: usize,
    /// The micro-batched serving configuration; the per-request baseline is
    /// derived from it via [`BatchConfig::per_request`].
    pub batch: BatchConfig,
    /// Namespace the generated request lines address (`serve loadgen
    /// --tenant NAME`). `None` replays v1 lines against the `default`
    /// tenant, exercising the back-compat path.
    pub tenant: Option<String>,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        Self {
            qps: 0.0,
            requests: 5000,
            warmup: 300,
            batch: BatchConfig::default(),
            tenant: None,
        }
    }
}

/// Measurements of one serving run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// `"per_request"` or `"micro_batched"`.
    pub mode: String,
    /// Offered load, requests/second.
    pub offered_qps: f64,
    /// Requests sent.
    pub sent: usize,
    /// Requests answered with an estimate.
    pub ok: usize,
    /// Requests shed by admission control.
    pub shed: usize,
    /// Requests answered with an error.
    pub errors: usize,
    /// Wall-clock from first submit until the last reply, seconds.
    pub elapsed_s: f64,
    /// Completed estimates per second (`ok / elapsed_s`).
    pub achieved_qps: f64,
    /// Median submit→reply latency, microseconds.
    pub p50_us: f64,
    /// 95th-percentile latency, microseconds.
    pub p95_us: f64,
    /// 99th-percentile latency, microseconds.
    pub p99_us: f64,
}

impl RunReport {
    fn json_object(&self) -> String {
        format!(
            "{{ \"mode\": \"{}\", \"sent\": {}, \"ok\": {}, \"shed\": {}, \"errors\": {}, \
             \"elapsed_s\": {:.4}, \"achieved_qps\": {:.1}, \
             \"p50_us\": {:.1}, \"p95_us\": {:.1}, \"p99_us\": {:.1} }}",
            self.mode,
            self.sent,
            self.ok,
            self.shed,
            self.errors,
            self.elapsed_s,
            self.achieved_qps,
            self.p50_us,
            self.p95_us,
            self.p99_us
        )
    }
}

impl std::fmt::Display for RunReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<14} offered {:>8.0} qps | achieved {:>8.0} qps | ok {:>5} shed {:>5} err {:>3} | \
             p50 {:>8.1}us p95 {:>8.1}us p99 {:>8.1}us",
            self.mode,
            self.offered_qps,
            self.achieved_qps,
            self.ok,
            self.shed,
            self.errors,
            self.p50_us,
            self.p95_us,
            self.p99_us
        )
    }
}

/// The serving comparison plus the knobs that produced it: per-request vs
/// micro-batched, and — now that workers estimate concurrently over one
/// shared frozen model — micro-batched with 1 worker vs the configured
/// worker count at the same saturated load.
#[derive(Debug, Clone)]
pub struct ComparisonReport {
    /// Distinct queries in the replayed workload.
    pub queries: usize,
    /// Offered load every run saw, requests/second.
    pub offered_qps: f64,
    /// Micro-batch window, microseconds.
    pub batch_window_us: u64,
    /// Micro-batch flush size.
    pub max_batch: usize,
    /// Admission-queue depth.
    pub queue_depth: usize,
    /// Batcher worker threads of the multi-worker runs.
    pub workers: usize,
    /// Cores visible to the process.
    pub available_parallelism: usize,
    /// Memory footprint of the served model, bytes — compare runs over an
    /// f32 vs a quantized framework differ here (and ideally nowhere else
    /// but latency).
    pub model_bytes: usize,
    /// Offered load of the saturated worker-scaling pair, requests/second
    /// (deliberately far above capacity, so achieved = service rate).
    pub scaling_offered_qps: f64,
    /// The per-request baseline run (configured worker count).
    pub per_request: RunReport,
    /// The micro-batched run at the configured worker count.
    pub micro_batched: RunReport,
    /// Micro-batched, single worker, saturated: this configuration's
    /// service rate.
    pub saturated_1w: RunReport,
    /// Micro-batched, configured worker count, saturated.
    pub saturated_multi: RunReport,
    /// `micro_batched.achieved_qps / per_request.achieved_qps`.
    pub throughput_gain: f64,
    /// `saturated_multi.achieved_qps / saturated_1w.achieved_qps` — the
    /// concurrent-estimation scaling the lock-free serving path buys on a
    /// multi-core machine (≈1 on a single core).
    pub worker_scaling: f64,
}

impl ComparisonReport {
    /// Machine-readable form, written to `BENCH_serve.json`.
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"benchmark\": \"lmkg-serve micro-batched vs per-request serving\",\n  \
             \"queries\": {},\n  \"offered_qps\": {:.1},\n  \"scaling_offered_qps\": {:.1},\n  \
             \"batch_window_us\": {},\n  \
             \"max_batch\": {},\n  \"queue_depth\": {},\n  \"workers\": {},\n  \
             \"available_parallelism\": {},\n  \"model_bytes\": {},\n  \"per_request\": {},\n  \
             \"micro_batched\": {},\n  \
             \"saturated_1w\": {},\n  \"saturated_multi\": {},\n  \
             \"throughput_gain\": {:.3},\n  \
             \"worker_scaling\": {:.3}\n}}\n",
            self.queries,
            self.offered_qps,
            self.scaling_offered_qps,
            self.batch_window_us,
            self.max_batch,
            self.queue_depth,
            self.workers,
            self.available_parallelism,
            self.model_bytes,
            self.per_request.json_object(),
            self.micro_batched.json_object(),
            self.saturated_1w.json_object(),
            self.saturated_multi.json_object(),
            self.throughput_gain,
            self.worker_scaling
        )
    }
}

/// Replays pre-formatted request lines against a service at `qps`,
/// collecting replies until every admitted request is answered.
pub fn replay(svc: &EstimationService, lines: &[String], qps: f64, mode: &str) -> RunReport {
    replay_with_estimates(svc, lines, qps, mode).0
}

/// Like [`replay`], but also returns each answered request's estimate keyed
/// by its request index (`q<i>` ids) — the shifted-workload benchmark joins
/// these against true cardinalities for q-errors.
pub fn replay_with_estimates(
    svc: &EstimationService,
    lines: &[String],
    qps: f64,
    mode: &str,
) -> (RunReport, Vec<(usize, f64)>) {
    assert!(qps > 0.0, "offered QPS must be positive");
    let (tx, rx) = mpsc::channel::<Reply>();
    let collector = std::thread::Builder::new()
        .name("lmkg-loadgen-collector".into())
        .spawn(move || {
            let (mut ok, mut shed, mut errors) = (0usize, 0usize, 0usize);
            let mut latencies: Vec<f64> = Vec::new();
            let mut estimates: Vec<(usize, f64)> = Vec::new();
            for reply in rx {
                match reply {
                    Reply::Estimate { id, estimate, micros } => {
                        ok += 1;
                        latencies.push(micros);
                        if let Some(i) = id.strip_prefix('q').and_then(|t| t.parse().ok()) {
                            estimates.push((i, estimate));
                        }
                    }
                    Reply::Overloaded { .. } => shed += 1,
                    Reply::Error { .. } => errors += 1,
                    Reply::Stats { .. } | Reply::Metrics { .. } | Reply::Tenants { .. } => {}
                }
            }
            (ok, shed, errors, latencies, estimates)
        })
        .expect("spawn collector thread");

    let start = Instant::now();
    for (i, line) in lines.iter().enumerate() {
        let due = start + Duration::from_secs_f64(i as f64 / qps);
        let now = Instant::now();
        if due > now {
            std::thread::sleep(due - now);
        }
        svc.handle_line(line, &tx);
    }
    drop(tx); // collector drains the in-flight tail, then exits
    let (ok, shed, errors, mut latencies, estimates) = collector.join().expect("collector thread panicked");
    let elapsed_s = start.elapsed().as_secs_f64().max(1e-9);
    latencies.sort_by(f64::total_cmp);
    let report = RunReport {
        mode: mode.to_string(),
        offered_qps: qps,
        sent: lines.len(),
        ok,
        shed,
        errors,
        elapsed_s,
        achieved_qps: ok as f64 / elapsed_s,
        p50_us: percentile(&latencies, 50.0),
        p95_us: percentile(&latencies, 95.0),
        p99_us: percentile(&latencies, 99.0),
    };
    (report, estimates)
}

/// Formats queries as v1 `EST` request lines (ids `q0`, `q1`, …), cycling
/// the slice until `count` lines exist.
pub fn request_lines(queries: &[Query], graph: &KnowledgeGraph, count: usize) -> Vec<String> {
    request_lines_for(None, queries, graph, count)
}

/// Like [`request_lines`], addressed to a namespace: with
/// `tenant = Some(name)` every line is a v2 `EST <name> q<i> <sparql>`;
/// with `None` the lines are v1 (no tenant token).
pub fn request_lines_for(tenant: Option<&str>, queries: &[Query], graph: &KnowledgeGraph, count: usize) -> Vec<String> {
    assert!(!queries.is_empty(), "need at least one query to replay");
    (0..count)
        .map(|i| {
            Request::Estimate {
                tenant: tenant.map(str::to_string),
                id: format!("q{i}"),
                sparql: sparql::format_query(&queries[i % queries.len()], graph),
            }
            .to_string()
        })
        .collect()
}

/// A malformed line in a replayed workload file, with its 1-based line
/// number — the load generator reports it instead of panicking mid-run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadLineError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What was wrong with it.
    pub message: String,
}

impl std::fmt::Display for WorkloadLineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "workload line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for WorkloadLineError {}

/// Parses a replayable workload from text: one query per line, either as a
/// protocol request line (`EST <id> <sparql>`, as `serve sample` emits) or
/// as bare SPARQL. Blank lines and `#` comments are skipped;
/// `STATS`/`METRICS`/`QUIT` lines from captured sessions are ignored. A malformed line is a proper
/// [`WorkloadLineError`] carrying its line number — it must not take the
/// load generator down.
pub fn parse_workload(text: &str, graph: &KnowledgeGraph) -> Result<Vec<Query>, WorkloadLineError> {
    let mut queries = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let sparql_text = match Request::parse(line) {
            Ok(Request::Estimate { sparql, .. }) => sparql,
            Ok(Request::Stats { .. } | Request::Metrics { .. } | Request::Tenants { .. } | Request::Quit) => continue,
            // Not a request line: treat the whole line as bare SPARQL.
            Err(_) => line.to_string(),
        };
        match sparql::parse(&sparql_text, graph) {
            Ok(parsed) => queries.push(parsed.query),
            Err(e) => {
                return Err(WorkloadLineError {
                    line: i + 1,
                    message: e.message,
                })
            }
        }
    }
    Ok(queries)
}

/// Builds a one-tenant service for a loadgen run, honoring the configured
/// target namespace (`None` → the `default` tenant).
fn single_tenant_service(
    tenant: Option<&str>,
    graph: &Arc<KnowledgeGraph>,
    estimator: &SharedEstimator,
    batch: BatchConfig,
) -> EstimationService {
    ServeBuilder::new()
        .batch(batch)
        .tenant(TenantSpec::new(
            tenant.unwrap_or(DEFAULT_TENANT),
            Arc::clone(graph),
            Arc::clone(estimator),
        ))
        .build()
        .expect("one valid tenant always builds")
}

/// Measures the estimator's direct (no serving layer) per-query latency.
fn calibrate(estimator: &dyn CardinalityEstimator, queries: &[Query]) -> f64 {
    let sample: Vec<Query> = queries.iter().take(200).cloned().collect();
    // One warm pass, then the measured pass.
    for q in &sample {
        std::hint::black_box(estimator.estimate(q));
    }
    let start = Instant::now();
    for q in &sample {
        std::hint::black_box(estimator.estimate(q));
    }
    start.elapsed().as_secs_f64() / sample.len() as f64
}

/// Runs the full comparison: the same workload, the same offered QPS,
/// served per-request, micro-batched with one worker, and micro-batched at
/// the configured worker count — all over one `Arc`-shared frozen model
/// (cloning the handle is free, so no hand-back dance is needed).
pub fn compare(
    graph: &Arc<KnowledgeGraph>,
    estimator: SharedEstimator,
    queries: &[Query],
    cfg: &LoadgenConfig,
) -> ComparisonReport {
    // Always calibrate: the headline offered load may be user-fixed, but
    // the worker-scaling pair below needs a load derived from the model's
    // actual service rate to be capacity-bound.
    let calibrated_qps = 2.0 / calibrate(&estimator, queries).max(1e-9);
    let offered_qps = if cfg.qps > 0.0 { cfg.qps } else { calibrated_qps };
    let tenant = cfg.tenant.as_deref();
    let lines = request_lines_for(tenant, queries, graph, cfg.requests);
    let warmup_lines = request_lines_for(tenant, queries, graph, cfg.warmup.max(1));

    let run = |batch: BatchConfig, mode: &str| -> RunReport {
        let svc = single_tenant_service(tenant, graph, &estimator, batch);
        let _ = replay(&svc, &warmup_lines, offered_qps, "warmup");
        replay(&svc, &lines, offered_qps, mode)
    };

    let per_request = run(cfg.batch.clone().per_request(), "per_request");
    let micro_batched = run(cfg.batch.clone(), "micro_batched");

    // The worker-scaling pair must be *capacity*-bound, not offer-bound:
    // micro-batching beats the calibrated per-request rate severalfold, so
    // the headline offered load leaves every worker configuration idle part
    // of the time. Offer far beyond capacity (shedding is expected) and the
    // achieved throughput becomes each configuration's service rate. Scaled
    // from the calibrated rate, not `cfg.qps`, so an explicitly-throttled
    // headline load cannot starve the saturation runs.
    let scaling_offered_qps = (calibrated_qps * 8.0).max(offered_qps);
    let saturated = |batch: BatchConfig, mode: &str| -> RunReport {
        let svc = single_tenant_service(tenant, graph, &estimator, batch);
        let _ = replay(&svc, &warmup_lines, scaling_offered_qps, "warmup");
        replay(&svc, &lines, scaling_offered_qps, mode)
    };
    let one_worker = BatchConfig {
        workers: 1,
        ..cfg.batch.clone()
    };
    let saturated_1w = saturated(one_worker, "saturated_1w");
    let saturated_multi = saturated(cfg.batch.clone(), "saturated_multi");

    ComparisonReport {
        queries: queries.len(),
        offered_qps,
        scaling_offered_qps,
        batch_window_us: cfg.batch.window.as_micros() as u64,
        max_batch: cfg.batch.max_batch,
        queue_depth: cfg.batch.queue_depth,
        workers: cfg.batch.workers,
        available_parallelism: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        model_bytes: estimator.memory_bytes(),
        throughput_gain: micro_batched.achieved_qps / per_request.achieved_qps.max(1e-9),
        worker_scaling: saturated_multi.achieved_qps / saturated_1w.achieved_qps.max(1e-9),
        per_request,
        micro_batched,
        saturated_1w,
        saturated_multi,
    }
}

/// The observability A/B: the same saturated workload served with the full
/// instrumentation on (`BatchConfig::obs`, the default) and off
/// (`serve … --no-obs`).
#[derive(Debug, Clone)]
pub struct ObsOverheadReport {
    /// Saturated run with stage tracing and histograms recording.
    pub instrumented: RunReport,
    /// The same saturated run with `obs: false`.
    pub no_obs: RunReport,
    /// Saturated throughput lost to instrumentation, percent:
    /// `(1 − instrumented/no_obs) · 100`. Negative means run-to-run noise
    /// favored the instrumented side.
    pub overhead_pct: f64,
}

impl ObsOverheadReport {
    /// Machine-readable form (the `"observability"` section of
    /// `BENCH_serve.json`).
    pub fn to_json(&self) -> String {
        format!(
            "{{\n    \"instrumented\": {},\n    \"no_obs\": {},\n    \"overhead_pct\": {:.2}\n  }}",
            self.instrumented.json_object(),
            self.no_obs.json_object(),
            self.overhead_pct
        )
    }
}

/// Measures what the observability layer costs at saturation: the
/// micro-batched configuration from `cfg`, offered far beyond capacity
/// (like the worker-scaling pair in [`compare`]), once with `obs: true`
/// and once with `obs: false` — best-of-`rounds` on achieved throughput
/// per side, so scheduler noise does not masquerade as instrumentation
/// cost.
pub fn obs_overhead(
    graph: &Arc<KnowledgeGraph>,
    estimator: SharedEstimator,
    queries: &[Query],
    cfg: &LoadgenConfig,
    rounds: usize,
) -> ObsOverheadReport {
    let rounds = rounds.max(1);
    let calibrated_qps = 2.0 / calibrate(&estimator, queries).max(1e-9);
    let offered_qps = if cfg.qps > 0.0 { cfg.qps } else { calibrated_qps };
    let saturated_qps = (calibrated_qps * 8.0).max(offered_qps);
    let tenant = cfg.tenant.as_deref();
    let lines = request_lines_for(tenant, queries, graph, cfg.requests);
    let warmup_lines = request_lines_for(tenant, queries, graph, cfg.warmup.max(1));
    let best = |obs: bool, mode: &str| -> RunReport {
        let mut best: Option<RunReport> = None;
        for _ in 0..rounds {
            let batch = BatchConfig {
                obs,
                ..cfg.batch.clone()
            };
            let svc = single_tenant_service(tenant, graph, &estimator, batch);
            let _ = replay(&svc, &warmup_lines, saturated_qps, "warmup");
            let run = replay(&svc, &lines, saturated_qps, mode);
            if best.as_ref().is_none_or(|b| run.achieved_qps > b.achieved_qps) {
                best = Some(run);
            }
        }
        best.expect("rounds >= 1")
    };
    let instrumented = best(true, "obs_on");
    let no_obs = best(false, "obs_off");
    let overhead_pct = (1.0 - instrumented.achieved_qps / no_obs.achieved_qps.max(1e-9)) * 100.0;
    ObsOverheadReport {
        instrumented,
        no_obs,
        overhead_pct,
    }
}

/// The two-tenant quota-isolation benchmark: both tenants are offered the
/// same saturating load concurrently; the `hot` tenant runs behind a tiny
/// admission quota, the `cool` tenant behind an ample one.
#[derive(Debug, Clone)]
pub struct MultiTenantReport {
    /// Offered load **per tenant**, requests/second (equal by design).
    pub offered_qps: f64,
    /// The hot tenant's admission quota (its queue depth).
    pub hot_quota: usize,
    /// The cool tenant's admission quota.
    pub cool_quota: usize,
    /// The quota-starved tenant's run.
    pub hot: RunReport,
    /// The amply-provisioned tenant's run, concurrent with `hot`.
    pub cool: RunReport,
    /// Quota isolation held: the hot tenant shed (its quota bound), the
    /// cool tenant shed nothing (its neighbor's overload never reached it).
    pub isolated: bool,
}

impl MultiTenantReport {
    /// Machine-readable form (the `"multi_tenant"` section of
    /// `BENCH_serve.json`).
    pub fn to_json(&self) -> String {
        format!(
            "{{\n    \"offered_qps_per_tenant\": {:.1},\n    \"hot_quota\": {},\n    \"cool_quota\": {},\n    \
             \"hot\": {},\n    \"cool\": {},\n    \"isolated\": {}\n  }}",
            self.offered_qps,
            self.hot_quota,
            self.cool_quota,
            self.hot.json_object(),
            self.cool.json_object(),
            self.isolated
        )
    }
}

/// Runs two tenants of one service concurrently at equal offered load. The
/// `hot` tenant's quota is tiny (it must shed), the `cool` tenant's quota
/// covers the whole run (it must not) — per-tenant achieved QPS and p95
/// plus the isolation verdict land in the report. Both tenants share the
/// same graph and frozen estimator, so any throughput or latency difference
/// is the quota, not the model.
pub fn multi_tenant(
    graph: &Arc<KnowledgeGraph>,
    estimator: SharedEstimator,
    queries: &[Query],
    cfg: &LoadgenConfig,
) -> MultiTenantReport {
    // Saturating like the worker-scaling pair in `compare`: the point is to
    // drive the hot tenant's queue over its quota.
    let calibrated_qps = 2.0 / calibrate(&estimator, queries).max(1e-9);
    let offered_qps = (calibrated_qps * 8.0).max(cfg.qps);
    let hot_quota = 4;
    let cool_quota = cfg.requests.max(cfg.batch.queue_depth);
    let svc = ServeBuilder::new()
        .batch(cfg.batch.clone())
        .tenant(TenantSpec::new("hot", Arc::clone(graph), Arc::clone(&estimator)).quota(hot_quota))
        .tenant(TenantSpec::new("cool", Arc::clone(graph), Arc::clone(&estimator)).quota(cool_quota))
        .build()
        .expect("two distinct tenants always build");
    let hot_lines = request_lines_for(Some("hot"), queries, graph, cfg.requests);
    let cool_lines = request_lines_for(Some("cool"), queries, graph, cfg.requests);
    for tenant in ["hot", "cool"] {
        let warmup = request_lines_for(Some(tenant), queries, graph, cfg.warmup.max(1));
        let _ = replay(&svc, &warmup, offered_qps, "warmup");
    }
    let (hot, cool) = std::thread::scope(|s| {
        let hot = s.spawn(|| replay(&svc, &hot_lines, offered_qps, "hot"));
        let cool = s.spawn(|| replay(&svc, &cool_lines, offered_qps, "cool"));
        (hot.join().expect("hot replay"), cool.join().expect("cool replay"))
    });
    MultiTenantReport {
        offered_qps,
        hot_quota,
        cool_quota,
        isolated: hot.shed > 0 && cool.shed == 0,
        hot,
        cool,
    }
}

/// Parameters of the two-phase shifted-workload run.
#[derive(Debug, Clone)]
pub struct ShiftConfig {
    /// Offered load; `0.0` auto-calibrates like [`LoadgenConfig::qps`].
    pub qps: f64,
    /// Requests per phase.
    pub requests: usize,
    /// Serving configuration (the micro-batched one).
    pub batch: BatchConfig,
    /// Adaptation-loop knobs.
    pub adapter: AdapterConfig,
    /// How long to wait for the adapter's retrain + swap between the two
    /// shifted phases before giving up (the report records `retrains = 0`).
    pub swap_timeout: Duration,
}

impl Default for ShiftConfig {
    fn default() -> Self {
        Self {
            qps: 0.0,
            requests: 2000,
            batch: BatchConfig::default(),
            adapter: AdapterConfig {
                interval: Duration::from_millis(200),
                min_observed: 32,
                ..AdapterConfig::default()
            },
            swap_timeout: Duration::from_secs(300),
        }
    }
}

/// One phase of the shifted-workload run: serving metrics plus estimation
/// quality against exact cardinalities.
#[derive(Debug, Clone)]
pub struct ShiftPhase {
    /// The serving run.
    pub run: RunReport,
    /// Median q-error of the answered requests.
    pub median_q_error: f64,
    /// 95th-percentile q-error of the answered requests.
    pub p95_q_error: f64,
}

impl ShiftPhase {
    fn json_object(&self) -> String {
        format!(
            "{{ \"run\": {}, \"median_q_error\": {:.3}, \"p95_q_error\": {:.3} }}",
            self.run.json_object(),
            self.median_q_error,
            self.p95_q_error
        )
    }
}

/// The closed-loop adaptation benchmark: what the workload-shift loop buys,
/// measured through the full serving path.
#[derive(Debug, Clone)]
pub struct ShiftReport {
    /// The uncovered cell the workload shifted onto, e.g. `("star", 5)`.
    pub cell: (String, usize),
    /// Models before / after adaptation.
    pub models_before: usize,
    /// Models after adaptation.
    pub models_after: usize,
    /// Retrain events the adapter fired (0 = the swap never happened).
    pub retrains: u64,
    /// Whether the shifted cell was covered before (always false) / after.
    pub covered_after: bool,
    /// Seconds between the end of the pre-swap phase and the swap.
    pub adapt_wait_s: f64,
    /// The covered baseline workload (phase 0: direct model routing).
    pub baseline: ShiftPhase,
    /// The shifted workload before the swap (decomposition fallback).
    pub shifted_pre: ShiftPhase,
    /// The same shifted workload after the swap (direct model routing).
    pub shifted_post: ShiftPhase,
}

impl ShiftReport {
    /// Machine-readable form (the `"adaptation"` section of
    /// `BENCH_serve.json`).
    pub fn to_json(&self) -> String {
        format!(
            "{{\n    \"shift_cell\": [\"{}\", {}],\n    \"models_before\": {},\n    \"models_after\": {},\n    \
             \"retrains\": {},\n    \"covered_after\": {},\n    \"adapt_wait_s\": {:.3},\n    \
             \"baseline\": {},\n    \"shifted_pre_swap\": {},\n    \"shifted_post_swap\": {}\n  }}",
            self.cell.0,
            self.cell.1,
            self.models_before,
            self.models_after,
            self.retrains,
            self.covered_after,
            self.adapt_wait_s,
            self.baseline.json_object(),
            self.shifted_pre.json_object(),
            self.shifted_post.json_object()
        )
    }
}

/// Joins served estimates with exact cardinalities and summarizes q-error.
/// `truths` holds one exact count per distinct query of the cycle the
/// request lines were formatted from (request `i` replays query `i % len`).
fn q_errors(truths: &[u64], estimates: &[(usize, f64)]) -> (f64, f64) {
    let mut errors: Vec<f64> = estimates
        .iter()
        .map(|&(i, est)| q_error(est, truths[i % truths.len()]))
        .collect();
    errors.sort_by(f64::total_cmp);
    (percentile(&errors, 50.0), percentile(&errors, 95.0))
}

/// Runs the two-phase shifted-workload benchmark over one live service:
///
/// 1. **baseline** — a workload over the cells `base` was built for;
/// 2. **shifted (pre-swap)** — the workload jumps to `shifted` (an
///    uncovered cell), which the service answers through the decomposition
///    fallback while the monitor fills with the new mix;
/// 3. the adapter detects the drift, trains the missing model off to the
///    side, and publishes it with an atomic swap — this function only waits
///    (up to `swap_timeout`) and records how long the adaptation took;
/// 4. **shifted (post-swap)** — the same workload again, now routed through
///    the freshly trained model.
///
/// Before/after-swap q-error (against exact counts) and latency land in the
/// returned [`ShiftReport`].
pub fn shift(
    graph: &Arc<KnowledgeGraph>,
    base: Arc<Lmkg>,
    build_cfg: &LmkgConfig,
    covered: &[Query],
    shifted: &[Query],
    cfg: &ShiftConfig,
) -> ShiftReport {
    assert!(!covered.is_empty() && !shifted.is_empty());
    let cell = (shifted[0].shape(), shifted[0].size());
    assert!(
        !base.covers(cell.0, cell.1),
        "the shifted workload must target an uncovered cell, got covered {cell:?}"
    );
    let models_before = base.model_count();

    let (svc, adapter) =
        crate::adapter::adaptive_service(graph, &base, build_cfg, cfg.batch.clone(), cfg.adapter.clone());

    let qps = if cfg.qps > 0.0 {
        cfg.qps
    } else {
        2.0 / calibrate(base.as_ref(), covered).max(1e-9)
    };
    // Exact counts once per distinct query; the pre- and post-swap phases
    // replay the same shifted set, so the truths are shared.
    let exact = |queries: &[Query]| -> Vec<u64> { queries.iter().map(|q| counter::cardinality(graph, q)).collect() };
    let covered_truths = exact(covered);
    let shifted_truths = exact(shifted);
    let phase = |queries: &[Query], truths: &[u64], mode: &str| -> ShiftPhase {
        let lines = request_lines(queries, graph, cfg.requests);
        let (run, estimates) = replay_with_estimates(&svc, &lines, qps, mode);
        let (median_q_error, p95_q_error) = q_errors(truths, &estimates);
        ShiftPhase {
            run,
            median_q_error,
            p95_q_error,
        }
    };

    let baseline = phase(covered, &covered_truths, "baseline_covered");
    let shifted_pre = phase(shifted, &shifted_truths, "shifted_pre_swap");

    // Wait for the adapter to retrain and swap (it may already have fired
    // mid-phase if training outpaced the replay).
    let wait_start = Instant::now();
    while svc.stats().retrains == 0 && wait_start.elapsed() < cfg.swap_timeout {
        std::thread::sleep(Duration::from_millis(50));
    }
    let adapt_wait_s = wait_start.elapsed().as_secs_f64();

    let shifted_post = phase(shifted, &shifted_truths, "shifted_post_swap");

    let retrains = svc.stats().retrains;
    let current = adapter.stop();
    ShiftReport {
        cell: (cell.0.to_string(), cell.1),
        models_before,
        models_after: current.model_count(),
        retrains,
        covered_after: current.covers(cell.0, cell.1),
        adapt_wait_s,
        baseline,
        shifted_pre,
        shifted_post,
    }
}

/// The cold-start benchmark: what restarting from a model-store snapshot
/// buys over retraining from scratch, and whether the restarted replica is
/// the *same* replica (bitwise-identical estimates through the full serving
/// path).
#[derive(Debug, Clone)]
pub struct ColdStartReport {
    /// Wall-clock of training the framework from scratch, milliseconds.
    pub train_ms: f64,
    /// Wall-clock of publishing the snapshot (serialize + fsync + rename +
    /// manifest), milliseconds.
    pub save_ms: f64,
    /// Wall-clock of loading the newest generation back (read + checksum +
    /// decode + rebuild), milliseconds.
    pub load_ms: f64,
    /// `train_ms / load_ms` — how much faster a restart reaches serving.
    pub speedup: f64,
    /// The generation the benchmark published and reloaded.
    pub generation: u64,
    /// Serialized size of the model-set snapshot, bytes.
    pub snapshot_bytes: usize,
    /// Requests replayed through each replica for the parity check.
    pub parity_requests: usize,
    /// Whether every replayed estimate from the reloaded replica was
    /// bitwise identical to the trained one's.
    pub parity: bool,
}

impl ColdStartReport {
    /// Machine-readable form (the `"cold_start"` section of
    /// `BENCH_serve.json`).
    pub fn to_json(&self) -> String {
        format!(
            "{{\n    \"train_ms\": {:.1},\n    \"save_ms\": {:.2},\n    \"load_ms\": {:.2},\n    \
             \"speedup\": {:.1},\n    \"generation\": {},\n    \"snapshot_bytes\": {},\n    \
             \"parity_requests\": {},\n    \"parity\": {}\n  }}",
            self.train_ms,
            self.save_ms,
            self.load_ms,
            self.speedup,
            self.generation,
            self.snapshot_bytes,
            self.parity_requests,
            self.parity
        )
    }
}

/// Measures the cold-start path against retraining: publishes the trained
/// `base` (whose training took `train_time`) into a store at `dir`, loads
/// the newest generation back, and replays the same request lines through a
/// service over each replica, comparing every estimate bitwise. The replay
/// queue is widened to the line count so shedding cannot desynchronize the
/// two reply sets.
pub fn cold_start(
    graph: &Arc<KnowledgeGraph>,
    base: Arc<Lmkg>,
    train_time: Duration,
    queries: &[Query],
    cfg: &LoadgenConfig,
    dir: &std::path::Path,
) -> Result<ColdStartReport, StoreError> {
    let store = ModelStore::open(dir)?;
    let snapshot_bytes = base.save_to_vec()?.len();

    let t = Instant::now();
    let generation = store.publish(&base)?;
    let save_ms = t.elapsed().as_secs_f64() * 1e3;

    let t = Instant::now();
    let (loaded, loaded_gen) = store.load_latest()?;
    let load_ms = t.elapsed().as_secs_f64() * 1e3;
    debug_assert_eq!(loaded_gen, generation);

    let tenant = cfg.tenant.as_deref();
    let lines = request_lines_for(tenant, queries, graph, queries.len());
    let batch = BatchConfig {
        queue_depth: cfg.batch.queue_depth.max(lines.len()),
        ..cfg.batch.clone()
    };
    let replies = |estimator: SharedEstimator| -> Vec<(usize, f64)> {
        let svc = single_tenant_service(tenant, graph, &estimator, batch.clone());
        let (_, mut estimates) = replay_with_estimates(&svc, &lines, 20_000.0, "cold_start_parity");
        estimates.sort_by_key(|&(i, _)| i);
        estimates
    };
    let trained = replies(Arc::clone(&base) as SharedEstimator);
    let restarted = replies(Arc::new(loaded) as SharedEstimator);
    let parity = trained.len() == lines.len()
        && trained.len() == restarted.len()
        && trained
            .iter()
            .zip(&restarted)
            .all(|(a, b)| a.0 == b.0 && a.1.to_bits() == b.1.to_bits());

    let train_ms = train_time.as_secs_f64() * 1e3;
    Ok(ColdStartReport {
        train_ms,
        save_ms,
        load_ms,
        speedup: train_ms / load_ms.max(1e-9),
        generation,
        snapshot_bytes,
        parity_requests: lines.len(),
        parity,
    })
}

/// A star workload of the given size for the shifted phase, generated like
/// the covered workloads but over a cell the model set does not know.
pub fn shifted_workload(graph: &KnowledgeGraph, size: usize, count: usize, seed: u64) -> Vec<Query> {
    use lmkg_data::workload::{self, WorkloadConfig};
    let mut wl = WorkloadConfig::test_default(QueryShape::Star, size, seed);
    wl.count = count;
    workload::generate(graph, &wl).into_iter().map(|lq| lq.query).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmkg::GraphSummary;
    use lmkg_store::GraphBuilder;

    fn graph() -> Arc<KnowledgeGraph> {
        let mut b = GraphBuilder::new();
        for i in 0..20 {
            b.add(&format!(":s{i}"), ":p", &format!(":o{}", i % 5));
            b.add(&format!(":s{i}"), ":q", ":hub");
        }
        Arc::new(b.build())
    }

    fn star_queries(graph: &KnowledgeGraph) -> Vec<Query> {
        let text = "\
SELECT * WHERE { ?x :p ?y . }
SELECT * WHERE { ?x :p ?y ; :q :hub . }
";
        parse_workload(text, graph).expect("well-formed workload")
    }

    #[test]
    fn parse_workload_accepts_requests_bare_sparql_and_noise() {
        let graph = graph();
        let text = "\
# captured session header
EST q0 SELECT * WHERE { ?x :p ?y . }

SELECT * WHERE { ?x :q :hub . }
STATS s0
QUIT
";
        let queries = parse_workload(text, &graph).unwrap();
        assert_eq!(queries.len(), 2);
        assert_eq!(queries[0].size(), 1);
    }

    #[test]
    fn parse_workload_reports_the_offending_line_instead_of_panicking() {
        let graph = graph();
        let text = "\
EST q0 SELECT * WHERE { ?x :p ?y . }
# comment
EST q1 SELECT * WHERE { ?x :nosuchpredicate ?y . }
EST q2 SELECT * WHERE { ?x :p ?y . }
";
        let err = parse_workload(text, &graph).expect_err("bad predicate must not parse");
        assert_eq!(err.line, 3, "1-based line number of the malformed line");
        assert!(err.message.contains("nosuchpredicate"), "message: {}", err.message);
        assert!(err.to_string().starts_with("workload line 3:"));

        // Bare-SPARQL garbage is attributed the same way.
        let err = parse_workload("SELECT * WHERE { ?x :p ?y . }\ntotal garbage\n", &graph).unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn replay_answers_every_request() {
        let graph = graph();
        let queries = star_queries(&graph);
        let svc = single_tenant_service(
            None,
            &graph,
            &(Arc::new(GraphSummary::build(&graph)) as SharedEstimator),
            BatchConfig::default(),
        );
        let lines = request_lines(&queries, &graph, 200);
        let report = replay(&svc, &lines, 50_000.0, "micro_batched");
        assert_eq!(report.sent, 200);
        assert_eq!(report.ok + report.shed + report.errors, 200);
        assert_eq!(report.errors, 0);
        assert!(report.ok > 0);
        assert!(report.achieved_qps > 0.0);
        assert!(report.p50_us > 0.0 && report.p50_us <= report.p95_us && report.p95_us <= report.p99_us);
    }

    #[test]
    fn compare_runs_both_modes_over_one_estimator() {
        let graph = graph();
        let queries = star_queries(&graph);
        let cfg = LoadgenConfig {
            qps: 20_000.0,
            requests: 300,
            warmup: 50,
            batch: BatchConfig {
                window: Duration::from_micros(500),
                max_batch: 16,
                queue_depth: 256,
                workers: 2,
                obs: true,
            },
            tenant: None,
        };
        let estimator: SharedEstimator = Arc::new(GraphSummary::build(&graph));
        let report = compare(&graph, Arc::clone(&estimator), &queries, &cfg);
        assert_eq!(report.per_request.mode, "per_request");
        assert_eq!(report.micro_batched.mode, "micro_batched");
        assert_eq!(report.saturated_1w.mode, "saturated_1w");
        assert_eq!(report.saturated_multi.mode, "saturated_multi");
        assert_eq!(report.per_request.sent, 300);
        assert_eq!(report.micro_batched.sent, 300);
        assert!(report.throughput_gain > 0.0);
        assert!(report.worker_scaling > 0.0);
        assert!(report.scaling_offered_qps > report.offered_qps);
        assert_eq!(report.model_bytes, estimator.memory_bytes());
        assert_eq!(estimator.name(), "summary");
        // JSON is well-formed enough for jq-style tooling: key fields present.
        let json = report.to_json();
        for needle in [
            "\"per_request\"",
            "\"micro_batched\"",
            "\"saturated_1w\"",
            "\"saturated_multi\"",
            "\"throughput_gain\"",
            "\"worker_scaling\"",
            "\"offered_qps\"",
            "\"model_bytes\"",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
    }

    #[test]
    fn tenant_targeted_lines_are_v2_requests() {
        let graph = graph();
        let queries = star_queries(&graph);
        let lines = request_lines_for(Some("lubm"), &queries, &graph, 2);
        assert!(lines[0].starts_with("EST lubm q0 SELECT"), "{}", lines[0]);
        // And they parse back as v2 requests addressed to that namespace.
        match Request::parse(&lines[1]).unwrap() {
            Request::Estimate { tenant, id, .. } => {
                assert_eq!(tenant.as_deref(), Some("lubm"));
                assert_eq!(id, "q1");
            }
            other => panic!("expected EST, got {other:?}"),
        }
    }

    #[test]
    fn multi_tenant_answers_both_tenants_concurrently() {
        let graph = graph();
        let queries = star_queries(&graph);
        let cfg = LoadgenConfig {
            qps: 0.0,
            requests: 200,
            warmup: 20,
            batch: BatchConfig {
                window: Duration::from_micros(200),
                max_batch: 8,
                queue_depth: 64,
                workers: 2,
                obs: true,
            },
            tenant: None,
        };
        let estimator: SharedEstimator = Arc::new(GraphSummary::build(&graph));
        let report = multi_tenant(&graph, estimator, &queries, &cfg);
        assert_eq!(report.hot.sent, 200);
        assert_eq!(report.cool.sent, 200);
        // Every request is accounted for on both tenants; the cool tenant's
        // quota covers the whole run, so it never sheds.
        assert_eq!(report.hot.ok + report.hot.shed + report.hot.errors, 200);
        assert_eq!(report.cool.errors, 0);
        assert_eq!(report.cool.shed, 0, "ample quota must not shed");
        assert_eq!(report.cool.ok, 200);
        assert_eq!(report.hot_quota, 4);
        assert!(report.cool_quota >= 200);
        let json = report.to_json();
        for needle in [
            "\"offered_qps_per_tenant\"",
            "\"hot_quota\": 4",
            "\"hot\"",
            "\"cool\"",
            "\"isolated\"",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
    }
}
