//! The self-driving load generator: replays an `lmkg-data` workload through
//! the **full** serving path (request-line formatting → protocol parse →
//! admission → micro-batch → reply parse) at a target QPS, and produces the
//! closed-loop comparison the serving layer exists for — micro-batched vs
//! per-request serving of the same workload at the same offered load, with
//! throughput and p50/p95/p99 latency for each.
//!
//! The offered QPS can be fixed (`qps > 0`) or auto-calibrated: the
//! calibrator measures the estimator's direct per-query latency and offers
//! twice that service rate, so both serving modes run saturated and the
//! achieved throughput *is* each mode's service rate.

use crate::batcher::{BatchConfig, SharedEstimator};
use crate::latency::percentile;
use crate::protocol::{Reply, Request};
use crate::server::EstimationService;
use lmkg::CardinalityEstimator;
use lmkg_store::{sparql, KnowledgeGraph, Query};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Load-generation parameters.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Offered load in requests/second; `0.0` auto-calibrates to twice the
    /// estimator's direct per-query service rate.
    pub qps: f64,
    /// Requests per measured run.
    pub requests: usize,
    /// Unmeasured requests replayed before each run to warm caches.
    pub warmup: usize,
    /// The micro-batched serving configuration; the per-request baseline is
    /// derived from it via [`BatchConfig::per_request`].
    pub batch: BatchConfig,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        Self {
            qps: 0.0,
            requests: 5000,
            warmup: 300,
            batch: BatchConfig::default(),
        }
    }
}

/// Measurements of one serving run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// `"per_request"` or `"micro_batched"`.
    pub mode: String,
    /// Offered load, requests/second.
    pub offered_qps: f64,
    /// Requests sent.
    pub sent: usize,
    /// Requests answered with an estimate.
    pub ok: usize,
    /// Requests shed by admission control.
    pub shed: usize,
    /// Requests answered with an error.
    pub errors: usize,
    /// Wall-clock from first submit until the last reply, seconds.
    pub elapsed_s: f64,
    /// Completed estimates per second (`ok / elapsed_s`).
    pub achieved_qps: f64,
    /// Median submit→reply latency, microseconds.
    pub p50_us: f64,
    /// 95th-percentile latency, microseconds.
    pub p95_us: f64,
    /// 99th-percentile latency, microseconds.
    pub p99_us: f64,
}

impl RunReport {
    fn json_object(&self) -> String {
        format!(
            "{{ \"mode\": \"{}\", \"sent\": {}, \"ok\": {}, \"shed\": {}, \"errors\": {}, \
             \"elapsed_s\": {:.4}, \"achieved_qps\": {:.1}, \
             \"p50_us\": {:.1}, \"p95_us\": {:.1}, \"p99_us\": {:.1} }}",
            self.mode,
            self.sent,
            self.ok,
            self.shed,
            self.errors,
            self.elapsed_s,
            self.achieved_qps,
            self.p50_us,
            self.p95_us,
            self.p99_us
        )
    }
}

impl std::fmt::Display for RunReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<14} offered {:>8.0} qps | achieved {:>8.0} qps | ok {:>5} shed {:>5} err {:>3} | \
             p50 {:>8.1}us p95 {:>8.1}us p99 {:>8.1}us",
            self.mode,
            self.offered_qps,
            self.achieved_qps,
            self.ok,
            self.shed,
            self.errors,
            self.p50_us,
            self.p95_us,
            self.p99_us
        )
    }
}

/// The serving comparison plus the knobs that produced it: per-request vs
/// micro-batched, and — now that workers estimate concurrently over one
/// shared frozen model — micro-batched with 1 worker vs the configured
/// worker count at the same saturated load.
#[derive(Debug, Clone)]
pub struct ComparisonReport {
    /// Distinct queries in the replayed workload.
    pub queries: usize,
    /// Offered load every run saw, requests/second.
    pub offered_qps: f64,
    /// Micro-batch window, microseconds.
    pub batch_window_us: u64,
    /// Micro-batch flush size.
    pub max_batch: usize,
    /// Admission-queue depth.
    pub queue_depth: usize,
    /// Batcher worker threads of the multi-worker runs.
    pub workers: usize,
    /// Cores visible to the process.
    pub available_parallelism: usize,
    /// Offered load of the saturated worker-scaling pair, requests/second
    /// (deliberately far above capacity, so achieved = service rate).
    pub scaling_offered_qps: f64,
    /// The per-request baseline run (configured worker count).
    pub per_request: RunReport,
    /// The micro-batched run at the configured worker count.
    pub micro_batched: RunReport,
    /// Micro-batched, single worker, saturated: this configuration's
    /// service rate.
    pub saturated_1w: RunReport,
    /// Micro-batched, configured worker count, saturated.
    pub saturated_multi: RunReport,
    /// `micro_batched.achieved_qps / per_request.achieved_qps`.
    pub throughput_gain: f64,
    /// `saturated_multi.achieved_qps / saturated_1w.achieved_qps` — the
    /// concurrent-estimation scaling the lock-free serving path buys on a
    /// multi-core machine (≈1 on a single core).
    pub worker_scaling: f64,
}

impl ComparisonReport {
    /// Machine-readable form, written to `BENCH_serve.json`.
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"benchmark\": \"lmkg-serve micro-batched vs per-request serving\",\n  \
             \"queries\": {},\n  \"offered_qps\": {:.1},\n  \"scaling_offered_qps\": {:.1},\n  \
             \"batch_window_us\": {},\n  \
             \"max_batch\": {},\n  \"queue_depth\": {},\n  \"workers\": {},\n  \
             \"available_parallelism\": {},\n  \"per_request\": {},\n  \
             \"micro_batched\": {},\n  \
             \"saturated_1w\": {},\n  \"saturated_multi\": {},\n  \
             \"throughput_gain\": {:.3},\n  \
             \"worker_scaling\": {:.3}\n}}\n",
            self.queries,
            self.offered_qps,
            self.scaling_offered_qps,
            self.batch_window_us,
            self.max_batch,
            self.queue_depth,
            self.workers,
            self.available_parallelism,
            self.per_request.json_object(),
            self.micro_batched.json_object(),
            self.saturated_1w.json_object(),
            self.saturated_multi.json_object(),
            self.throughput_gain,
            self.worker_scaling
        )
    }
}

/// Replays pre-formatted request lines against a service at `qps`,
/// collecting replies until every admitted request is answered.
pub fn replay(svc: &EstimationService, lines: &[String], qps: f64, mode: &str) -> RunReport {
    assert!(qps > 0.0, "offered QPS must be positive");
    let (tx, rx) = mpsc::channel::<Reply>();
    let collector = std::thread::Builder::new()
        .name("lmkg-loadgen-collector".into())
        .spawn(move || {
            let (mut ok, mut shed, mut errors) = (0usize, 0usize, 0usize);
            let mut latencies: Vec<f64> = Vec::new();
            for reply in rx {
                match reply {
                    Reply::Estimate { micros, .. } => {
                        ok += 1;
                        latencies.push(micros);
                    }
                    Reply::Overloaded { .. } => shed += 1,
                    Reply::Error { .. } => errors += 1,
                    Reply::Stats { .. } => {}
                }
            }
            (ok, shed, errors, latencies)
        })
        .expect("spawn collector thread");

    let start = Instant::now();
    for (i, line) in lines.iter().enumerate() {
        let due = start + Duration::from_secs_f64(i as f64 / qps);
        let now = Instant::now();
        if due > now {
            std::thread::sleep(due - now);
        }
        svc.handle_line(line, &tx);
    }
    drop(tx); // collector drains the in-flight tail, then exits
    let (ok, shed, errors, mut latencies) = collector.join().expect("collector thread panicked");
    let elapsed_s = start.elapsed().as_secs_f64().max(1e-9);
    latencies.sort_by(f64::total_cmp);
    RunReport {
        mode: mode.to_string(),
        offered_qps: qps,
        sent: lines.len(),
        ok,
        shed,
        errors,
        elapsed_s,
        achieved_qps: ok as f64 / elapsed_s,
        p50_us: percentile(&latencies, 50.0),
        p95_us: percentile(&latencies, 95.0),
        p99_us: percentile(&latencies, 99.0),
    }
}

/// Formats queries as `EST` request lines (ids `q0`, `q1`, …), cycling the
/// slice until `count` lines exist.
pub fn request_lines(queries: &[Query], graph: &KnowledgeGraph, count: usize) -> Vec<String> {
    assert!(!queries.is_empty(), "need at least one query to replay");
    (0..count)
        .map(|i| {
            Request::Estimate {
                id: format!("q{i}"),
                sparql: sparql::format_query(&queries[i % queries.len()], graph),
            }
            .to_string()
        })
        .collect()
}

/// Measures the estimator's direct (no serving layer) per-query latency.
fn calibrate(estimator: &dyn CardinalityEstimator, queries: &[Query]) -> f64 {
    let sample: Vec<Query> = queries.iter().take(200).cloned().collect();
    // One warm pass, then the measured pass.
    for q in &sample {
        std::hint::black_box(estimator.estimate(q));
    }
    let start = Instant::now();
    for q in &sample {
        std::hint::black_box(estimator.estimate(q));
    }
    start.elapsed().as_secs_f64() / sample.len() as f64
}

/// Runs the full comparison: the same workload, the same offered QPS,
/// served per-request, micro-batched with one worker, and micro-batched at
/// the configured worker count — all over one `Arc`-shared frozen model
/// (cloning the handle is free, so no hand-back dance is needed).
pub fn compare(
    graph: &Arc<KnowledgeGraph>,
    estimator: SharedEstimator,
    queries: &[Query],
    cfg: &LoadgenConfig,
) -> ComparisonReport {
    // Always calibrate: the headline offered load may be user-fixed, but
    // the worker-scaling pair below needs a load derived from the model's
    // actual service rate to be capacity-bound.
    let calibrated_qps = 2.0 / calibrate(&estimator, queries).max(1e-9);
    let offered_qps = if cfg.qps > 0.0 { cfg.qps } else { calibrated_qps };
    let lines = request_lines(queries, graph, cfg.requests);
    let warmup_lines = request_lines(queries, graph, cfg.warmup.max(1));

    let run = |batch: BatchConfig, mode: &str| -> RunReport {
        let svc = EstimationService::new(Arc::clone(graph), Arc::clone(&estimator), batch);
        let _ = replay(&svc, &warmup_lines, offered_qps, "warmup");
        replay(&svc, &lines, offered_qps, mode)
    };

    let per_request = run(cfg.batch.clone().per_request(), "per_request");
    let micro_batched = run(cfg.batch.clone(), "micro_batched");

    // The worker-scaling pair must be *capacity*-bound, not offer-bound:
    // micro-batching beats the calibrated per-request rate severalfold, so
    // the headline offered load leaves every worker configuration idle part
    // of the time. Offer far beyond capacity (shedding is expected) and the
    // achieved throughput becomes each configuration's service rate. Scaled
    // from the calibrated rate, not `cfg.qps`, so an explicitly-throttled
    // headline load cannot starve the saturation runs.
    let scaling_offered_qps = (calibrated_qps * 8.0).max(offered_qps);
    let saturated = |batch: BatchConfig, mode: &str| -> RunReport {
        let svc = EstimationService::new(Arc::clone(graph), Arc::clone(&estimator), batch);
        let _ = replay(&svc, &warmup_lines, scaling_offered_qps, "warmup");
        replay(&svc, &lines, scaling_offered_qps, mode)
    };
    let one_worker = BatchConfig {
        workers: 1,
        ..cfg.batch.clone()
    };
    let saturated_1w = saturated(one_worker, "saturated_1w");
    let saturated_multi = saturated(cfg.batch.clone(), "saturated_multi");

    ComparisonReport {
        queries: queries.len(),
        offered_qps,
        scaling_offered_qps,
        batch_window_us: cfg.batch.window.as_micros() as u64,
        max_batch: cfg.batch.max_batch,
        queue_depth: cfg.batch.queue_depth,
        workers: cfg.batch.workers,
        available_parallelism: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        throughput_gain: micro_batched.achieved_qps / per_request.achieved_qps.max(1e-9),
        worker_scaling: saturated_multi.achieved_qps / saturated_1w.achieved_qps.max(1e-9),
        per_request,
        micro_batched,
        saturated_1w,
        saturated_multi,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmkg::GraphSummary;
    use lmkg_store::GraphBuilder;

    fn graph() -> Arc<KnowledgeGraph> {
        let mut b = GraphBuilder::new();
        for i in 0..20 {
            b.add(&format!(":s{i}"), ":p", &format!(":o{}", i % 5));
            b.add(&format!(":s{i}"), ":q", ":hub");
        }
        Arc::new(b.build())
    }

    fn star_queries(graph: &KnowledgeGraph) -> Vec<Query> {
        [
            "SELECT * WHERE { ?x :p ?y . }",
            "SELECT * WHERE { ?x :p ?y ; :q :hub . }",
        ]
        .iter()
        .map(|text| sparql::parse(text, graph).unwrap().query)
        .collect()
    }

    #[test]
    fn replay_answers_every_request() {
        let graph = graph();
        let queries = star_queries(&graph);
        let svc = EstimationService::new(
            Arc::clone(&graph),
            Arc::new(GraphSummary::build(&graph)),
            BatchConfig::default(),
        );
        let lines = request_lines(&queries, &graph, 200);
        let report = replay(&svc, &lines, 50_000.0, "micro_batched");
        assert_eq!(report.sent, 200);
        assert_eq!(report.ok + report.shed + report.errors, 200);
        assert_eq!(report.errors, 0);
        assert!(report.ok > 0);
        assert!(report.achieved_qps > 0.0);
        assert!(report.p50_us > 0.0 && report.p50_us <= report.p95_us && report.p95_us <= report.p99_us);
    }

    #[test]
    fn compare_runs_both_modes_over_one_estimator() {
        let graph = graph();
        let queries = star_queries(&graph);
        let cfg = LoadgenConfig {
            qps: 20_000.0,
            requests: 300,
            warmup: 50,
            batch: BatchConfig {
                window: Duration::from_micros(500),
                max_batch: 16,
                queue_depth: 256,
                workers: 2,
            },
        };
        let estimator: SharedEstimator = Arc::new(GraphSummary::build(&graph));
        let report = compare(&graph, Arc::clone(&estimator), &queries, &cfg);
        assert_eq!(report.per_request.mode, "per_request");
        assert_eq!(report.micro_batched.mode, "micro_batched");
        assert_eq!(report.saturated_1w.mode, "saturated_1w");
        assert_eq!(report.saturated_multi.mode, "saturated_multi");
        assert_eq!(report.per_request.sent, 300);
        assert_eq!(report.micro_batched.sent, 300);
        assert!(report.throughput_gain > 0.0);
        assert!(report.worker_scaling > 0.0);
        assert!(report.scaling_offered_qps > report.offered_qps);
        assert_eq!(estimator.name(), "summary");
        // JSON is well-formed enough for jq-style tooling: key fields present.
        let json = report.to_json();
        for needle in [
            "\"per_request\"",
            "\"micro_batched\"",
            "\"saturated_1w\"",
            "\"saturated_multi\"",
            "\"throughput_gain\"",
            "\"worker_scaling\"",
            "\"offered_qps\"",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
    }
}
