//! The line-based wire protocol both transports (pipe and TCP) speak.
//!
//! One request per line, one reply per line; requests carry a client-chosen
//! id token so replies can be matched even though the micro-batcher may
//! reorder completions. The grammar (whitespace-separated tokens, `<sparql>`
//! and `<message>` run to end of line):
//!
//! ```text
//! request  := "EST" <id> <sparql>      estimate one SPARQL BGP
//!           | "STATS" <id>             ask for the serving statistics
//!           | "METRICS" <id>           ask for the full metrics exposition
//!           | "QUIT"                   close the session
//! reply    := "OK" <id> <estimate> us=<micros>
//!           | "ERR" <id> <message>
//!           | "OVERLOADED" <id> depth=<queue-depth>
//!           | "STATS" <id> served=<n> shed=<n> batches=<n>
//!                          retrains=<n> added=<n> model=<bytes> tv=<f>
//!                          uncovered=<f> p50us=<f> p95us=<f> p99us=<f>
//!           | "METRICS" <id> lines=<n>
//!             <n lines of Prometheus-style exposition text,
//!              the last of which is "# EOF">
//! ```
//!
//! `METRICS` is the one multi-line reply: the header's `lines=<n>` field
//! frames the body (so a client reads exactly `n` more lines), and the body
//! independently ends with a `# EOF` sentinel for stream-oriented consumers.
//! Every other reply remains a single line.
//!
//! The `retrains`/`added`/`tv`/`uncovered` fields report the online
//! adaptation loop (retrain events, models added, last drift evaluation)
//! and `model` the published model's memory footprint in bytes (which
//! shrinks when a `--quantized` framework is served and follows adapter
//! swaps); all of them are optional on the parse side (defaulting to zero)
//! so transcripts from older servers still parse.
//!
//! `<id>` is any non-empty token without whitespace. Floats are rendered
//! with Rust's shortest-round-trip formatting, so parsing an `OK` reply
//! recovers the estimate **bitwise** — the serving parity suite relies on
//! this. Blank lines and `#` comments are skipped by the server before
//! parsing, so a workload file can be annotated.

use crate::latency::StatsSnapshot;
use std::fmt;

/// A malformed request or reply line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolError {
    /// Description of the failure, sent back verbatim in an `ERR` reply.
    pub message: String,
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "protocol error: {}", self.message)
    }
}

impl std::error::Error for ProtocolError {}

fn err<T>(message: impl Into<String>) -> Result<T, ProtocolError> {
    Err(ProtocolError {
        message: message.into(),
    })
}

/// Splits the next whitespace-delimited token off `input`, returning it and
/// the rest with leading whitespace removed. Runs of whitespace are one
/// separator, so tab-aligned or double-spaced lines parse like single-spaced
/// ones.
fn next_token(input: &str) -> (&str, &str) {
    let input = input.trim_start();
    match input.find(char::is_whitespace) {
        Some(end) => (&input[..end], input[end..].trim_start()),
        None => (input, ""),
    }
}

fn parse_id(token: &str, what: &str) -> Result<String, ProtocolError> {
    if token.is_empty() {
        err(format!("{what} requires an id token"))
    } else {
        Ok(token.to_string())
    }
}

/// A client→server request line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// `EST <id> <sparql>` — estimate the cardinality of a SPARQL BGP.
    Estimate {
        /// Client-chosen reply-matching token.
        id: String,
        /// The query text, `SELECT … WHERE { … }`.
        sparql: String,
    },
    /// `STATS <id>` — report serving counters and latency percentiles.
    Stats {
        /// Client-chosen reply-matching token.
        id: String,
    },
    /// `METRICS <id>` — report the full metrics exposition (counters, stage
    /// histograms, kernel-dispatch counters, recent events).
    Metrics {
        /// Client-chosen reply-matching token.
        id: String,
    },
    /// `QUIT` — end the session.
    Quit,
}

impl Request {
    /// Parses one request line (already trimmed, non-empty).
    pub fn parse(line: &str) -> Result<Request, ProtocolError> {
        let (verb, rest) = next_token(line);
        match verb {
            "EST" => {
                let (id, sparql) = next_token(rest);
                let id = parse_id(id, "EST")?;
                let sparql = sparql.trim_end();
                if sparql.is_empty() {
                    return err("EST requires a SPARQL query after the id");
                }
                Ok(Request::Estimate {
                    id,
                    sparql: sparql.to_string(),
                })
            }
            "STATS" => {
                let (id, extra) = next_token(rest);
                let id = parse_id(id, "STATS")?;
                if extra.trim_end().is_empty() {
                    Ok(Request::Stats { id })
                } else {
                    err(format!("unexpected tokens after STATS id: {extra:?}"))
                }
            }
            "METRICS" => {
                let (id, extra) = next_token(rest);
                let id = parse_id(id, "METRICS")?;
                if extra.trim_end().is_empty() {
                    Ok(Request::Metrics { id })
                } else {
                    err(format!("unexpected tokens after METRICS id: {extra:?}"))
                }
            }
            "QUIT" => {
                if rest.trim_end().is_empty() {
                    Ok(Request::Quit)
                } else {
                    err(format!("unexpected tokens after QUIT: {rest:?}"))
                }
            }
            other => err(format!(
                "unknown request verb {other:?} (expected EST, STATS, METRICS, or QUIT)"
            )),
        }
    }
}

impl fmt::Display for Request {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Request::Estimate { id, sparql } => write!(f, "EST {id} {sparql}"),
            Request::Stats { id } => write!(f, "STATS {id}"),
            Request::Metrics { id } => write!(f, "METRICS {id}"),
            Request::Quit => write!(f, "QUIT"),
        }
    }
}

/// A server→client reply line.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// `OK <id> <estimate> us=<micros>` — the estimate plus the request's
    /// measured in-server latency.
    Estimate {
        /// Echo of the request id.
        id: String,
        /// The cardinality estimate.
        estimate: f64,
        /// Submit→reply latency in microseconds.
        micros: f64,
    },
    /// `ERR <id> <message>` — malformed line, parse failure, or internal
    /// error; `id` is `-` when the line was too malformed to carry one.
    Error {
        /// Echo of the request id, or `-`.
        id: String,
        /// Human-readable description.
        message: String,
    },
    /// `OVERLOADED <id> depth=<n>` — admission control shed the request
    /// because the bounded queue (depth `n`) was full.
    Overloaded {
        /// Echo of the request id.
        id: String,
        /// The configured queue depth that was exhausted.
        depth: usize,
    },
    /// `STATS <id> …` — serving counters and latency percentiles.
    Stats {
        /// Echo of the request id.
        id: String,
        /// The snapshot.
        snapshot: StatsSnapshot,
    },
    /// `METRICS <id> lines=<n>` followed by `n` lines of exposition text —
    /// the one multi-line reply. `text` is the exposition body *without*
    /// the terminating `# EOF` line; Display appends it (and the header's
    /// `lines=` count includes it), so the wire form always ends with the
    /// sentinel.
    Metrics {
        /// Echo of the request id.
        id: String,
        /// The Prometheus-style exposition body (no `# EOF`). Empty when
        /// this value came from parsing a header line: the body travels on
        /// subsequent lines, which the line-oriented parser does not
        /// consume — clients read `lines=<n>` more lines themselves.
        text: String,
    },
}

impl Reply {
    /// Parses one reply line (the client side of the protocol; the load
    /// generator and tests use this to close the loop).
    pub fn parse(line: &str) -> Result<Reply, ProtocolError> {
        let (verb, after_verb) = next_token(line);
        let (id_token, rest) = next_token(after_verb);
        match verb {
            "OK" => {
                let id = parse_id(id_token, "OK")?;
                let mut fields = rest.split_whitespace();
                let estimate: f64 = fields
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| ProtocolError {
                        message: "OK requires a numeric estimate".into(),
                    })?;
                let micros: f64 = fields
                    .next()
                    .and_then(|t| t.strip_prefix("us="))
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| ProtocolError {
                        message: "OK requires a us=<micros> field".into(),
                    })?;
                Ok(Reply::Estimate { id, estimate, micros })
            }
            "ERR" => {
                let id = parse_id(id_token, "ERR")?;
                let message = rest.trim_end().to_string();
                if message.is_empty() {
                    return err("ERR requires a message");
                }
                Ok(Reply::Error { id, message })
            }
            "OVERLOADED" => {
                let id = parse_id(id_token, "OVERLOADED")?;
                let depth = rest
                    .trim_end()
                    .strip_prefix("depth=")
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| ProtocolError {
                        message: "OVERLOADED requires a depth=<n> field".into(),
                    })?;
                Ok(Reply::Overloaded { id, depth })
            }
            "STATS" => {
                let id = parse_id(id_token, "STATS")?;
                let mut served = None;
                let mut shed = None;
                let mut batches = None;
                let mut retrains = None;
                let mut added = None;
                let mut model = None;
                let mut tv = None;
                let mut uncovered = None;
                let mut p50 = None;
                let mut p95 = None;
                let mut p99 = None;
                for field in rest.split_whitespace() {
                    let Some((key, value)) = field.split_once('=') else {
                        return err(format!("malformed STATS field {field:?}"));
                    };
                    match key {
                        "served" => served = value.parse().ok(),
                        "shed" => shed = value.parse().ok(),
                        "batches" => batches = value.parse().ok(),
                        "retrains" => retrains = value.parse().ok(),
                        "added" => added = value.parse().ok(),
                        "model" => model = value.parse().ok(),
                        "tv" => tv = value.parse().ok(),
                        "uncovered" => uncovered = value.parse().ok(),
                        "p50us" => p50 = value.parse().ok(),
                        "p95us" => p95 = value.parse().ok(),
                        "p99us" => p99 = value.parse().ok(),
                        other => return err(format!("unknown STATS field {other:?}")),
                    }
                }
                match (served, shed, batches, p50, p95, p99) {
                    (Some(served), Some(shed), Some(batches), Some(p50_us), Some(p95_us), Some(p99_us)) => {
                        Ok(Reply::Stats {
                            id,
                            snapshot: StatsSnapshot {
                                served,
                                shed,
                                batches,
                                retrains: retrains.unwrap_or(0),
                                models_added: added.unwrap_or(0),
                                model_bytes: model.unwrap_or(0),
                                drift_tv: tv.unwrap_or(0.0),
                                drift_uncovered: uncovered.unwrap_or(0.0),
                                p50_us,
                                p95_us,
                                p99_us,
                            },
                        })
                    }
                    _ => err("STATS reply is missing fields"),
                }
            }
            "METRICS" => {
                let id = parse_id(id_token, "METRICS")?;
                let has_lines = rest
                    .trim_end()
                    .strip_prefix("lines=")
                    .and_then(|t| t.parse::<u64>().ok())
                    .is_some();
                if !has_lines {
                    return err("METRICS requires a lines=<n> field");
                }
                // The body is on subsequent lines; a line-oriented parser
                // only sees the header. Callers consume `lines=<n>` more
                // lines (ending in `# EOF`) themselves.
                Ok(Reply::Metrics {
                    id,
                    text: String::new(),
                })
            }
            other => err(format!("unknown reply verb {other:?}")),
        }
    }
}

impl fmt::Display for Reply {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Reply::Estimate { id, estimate, micros } => write!(f, "OK {id} {estimate} us={micros}"),
            Reply::Error { id, message } => write!(f, "ERR {id} {message}"),
            Reply::Overloaded { id, depth } => write!(f, "OVERLOADED {id} depth={depth}"),
            Reply::Stats { id, snapshot } => write!(f, "STATS {id} {snapshot}"),
            Reply::Metrics { id, text } => {
                let body = text.trim_end_matches('\n');
                // lines= counts everything after the header, # EOF included.
                let lines = if body.is_empty() { 1 } else { body.lines().count() + 1 };
                if body.is_empty() {
                    write!(f, "METRICS {id} lines={lines}\n# EOF")
                } else {
                    write!(f, "METRICS {id} lines={lines}\n{body}\n# EOF")
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips() {
        let cases = [
            Request::Estimate {
                id: "q17".into(),
                sparql: "SELECT * WHERE { ?x :p ?y . ?y :q ?z . }".into(),
            },
            Request::Stats { id: "s1".into() },
            Request::Metrics { id: "m1".into() },
            Request::Quit,
        ];
        for req in cases {
            let line = req.to_string();
            assert_eq!(Request::parse(&line).unwrap(), req, "round trip of {line:?}");
        }
    }

    #[test]
    fn reply_round_trips_estimates_bitwise() {
        for estimate in [1.0, 1e-300, 123456.789, 0.1 + 0.2, f64::MAX, 7.0 / 3.0] {
            let reply = Reply::Estimate {
                id: "a".into(),
                estimate,
                micros: 41.75,
            };
            let parsed = Reply::parse(&reply.to_string()).unwrap();
            let Reply::Estimate {
                estimate: back, micros, ..
            } = parsed
            else {
                panic!("wrong variant");
            };
            assert_eq!(
                back.to_bits(),
                estimate.to_bits(),
                "estimate must survive the wire bitwise"
            );
            assert_eq!(micros, 41.75);
        }
    }

    #[test]
    fn reply_round_trips_all_variants() {
        let cases = [
            Reply::Error {
                id: "q1".into(),
                message: "unknown node term \":Nobody\" (not in the graph's dictionary)".into(),
            },
            Reply::Overloaded {
                id: "q2".into(),
                depth: 1024,
            },
            Reply::Stats {
                id: "s".into(),
                snapshot: StatsSnapshot {
                    served: 12,
                    shed: 3,
                    batches: 4,
                    retrains: 2,
                    models_added: 3,
                    model_bytes: 123456,
                    drift_tv: 0.875,
                    drift_uncovered: 0.25,
                    p50_us: 10.5,
                    p95_us: 99.25,
                    p99_us: 150.0,
                },
            },
        ];
        for reply in cases {
            let line = reply.to_string();
            assert_eq!(Reply::parse(&line).unwrap(), reply, "round trip of {line:?}");
        }
    }

    #[test]
    fn metrics_reply_frames_its_body() {
        let reply = Reply::Metrics {
            id: "m1".into(),
            text: "# HELP x y\n# TYPE x counter\nx 3\n".into(),
        };
        let wire = reply.to_string();
        let mut lines = wire.lines();
        // Header counts body lines + the # EOF sentinel.
        assert_eq!(lines.next(), Some("METRICS m1 lines=4"));
        assert_eq!(wire.lines().last(), Some("# EOF"));
        assert_eq!(wire.lines().count(), 5);
        assert!(!wire.ends_with('\n'), "transport's writeln! supplies the final newline");

        // The header alone parses back into a (body-less) Metrics reply.
        let parsed = Reply::parse("METRICS m1 lines=4").unwrap();
        assert_eq!(
            parsed,
            Reply::Metrics {
                id: "m1".into(),
                text: String::new()
            }
        );

        // Empty body still frames a lone # EOF.
        let empty = Reply::Metrics {
            id: "m2".into(),
            text: String::new(),
        };
        assert_eq!(empty.to_string(), "METRICS m2 lines=1\n# EOF");
    }

    #[test]
    fn stats_adaptation_fields_are_optional() {
        // A transcript from a server without an adapter (or an older one)
        // carries no retrains/added/model/tv/uncovered fields; they default
        // to 0.
        let reply = Reply::parse("STATS s served=5 shed=0 batches=2 p50us=1.5 p95us=2.5 p99us=3.5").unwrap();
        let Reply::Stats { snapshot, .. } = reply else {
            panic!("wrong variant");
        };
        assert_eq!(snapshot.retrains, 0);
        assert_eq!(snapshot.models_added, 0);
        assert_eq!(snapshot.model_bytes, 0);
        assert_eq!(snapshot.drift_tv, 0.0);
        assert_eq!(snapshot.drift_uncovered, 0.0);
        assert_eq!(snapshot.served, 5);
    }

    #[test]
    fn repeated_whitespace_is_one_separator() {
        // Tab-aligned or double-spaced lines are well-formed per the grammar.
        let req = Request::parse("EST \t q1   SELECT * WHERE { ?x :p ?y . }").unwrap();
        assert_eq!(
            req,
            Request::Estimate {
                id: "q1".into(),
                sparql: "SELECT * WHERE { ?x :p ?y . }".into(),
            }
        );
        assert_eq!(
            Request::parse("STATS   s1").unwrap(),
            Request::Stats { id: "s1".into() }
        );
        let reply = Reply::parse("OK  q1   2.5 us=7").unwrap();
        assert_eq!(
            reply,
            Reply::Estimate {
                id: "q1".into(),
                estimate: 2.5,
                micros: 7.0,
            }
        );
        assert_eq!(
            Reply::parse("OVERLOADED  q2  depth=8").unwrap(),
            Reply::Overloaded {
                id: "q2".into(),
                depth: 8
            }
        );
    }

    #[test]
    fn malformed_requests_are_rejected_with_reasons() {
        for (line, needle) in [
            ("FOO q1 whatever", "unknown request verb"),
            ("EST", "requires an id"),
            ("EST q1", "requires a SPARQL query"),
            ("EST q1    ", "requires a SPARQL query"),
            ("STATS", "requires an id"),
            ("STATS s1 extra", "unexpected tokens"),
            ("METRICS", "requires an id"),
            ("METRICS m1 extra", "unexpected tokens"),
            ("QUIT now", "unexpected tokens"),
        ] {
            let e = Request::parse(line).unwrap_err();
            assert!(
                e.message.contains(needle),
                "{line:?} should fail mentioning {needle:?}, got {:?}",
                e.message
            );
        }
    }

    #[test]
    fn malformed_replies_are_rejected() {
        for line in [
            "OK q1",
            "OK q1 notanumber us=3",
            "OK q1 3.5",
            "OK q1 3.5 us=abc",
            "OVERLOADED q1",
            "OVERLOADED q1 depth=x",
            "ERR q1",
            "STATS s1 served=1",
            "STATS s1 bogus=2",
            "METRICS m1",
            "METRICS m1 lines=abc",
            "NOPE q1 1",
        ] {
            assert!(Reply::parse(line).is_err(), "{line:?} should not parse");
        }
    }
}
