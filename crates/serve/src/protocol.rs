//! The line-based wire protocol both transports (pipe and TCP) speak —
//! **protocol v2**, namespace-routed: every verb can carry a tenant token,
//! and a v1 line without one routes to the `default` tenant.
//!
//! One request per line, one reply per line; requests carry a client-chosen
//! id token so replies can be matched even though the micro-batcher may
//! reorder completions. The v2 grammar (whitespace-separated tokens,
//! `<sparql>` and `<message>` run to end of line):
//!
//! ```text
//! request  := "EST" [<tenant>] <id> <sparql>   estimate one SPARQL BGP
//!           | "STATS" [<tenant>] <id>          serving statistics of one tenant
//!           | "METRICS" [<tenant>] <id>        metrics exposition of one tenant
//!           | "TENANTS" <id>                   list the served tenant namespaces
//!           | "QUIT"                           close the session
//! reply    := "OK" <id> <estimate> us=<micros>
//!           | "ERR" <id> code=<kebab-code> <message>
//!           | "OVERLOADED" <id> depth=<queue-depth>
//!           | "STATS" <id> served=<n> shed=<n> batches=<n>
//!                          retrains=<n> added=<n> model=<bytes> tv=<f>
//!                          uncovered=<f> p50us=<f> p95us=<f> p99us=<f>
//!           | "TENANTS" <id> <name> ...
//!           | "METRICS" <id> lines=<n>
//!             <n lines of Prometheus-style exposition text,
//!              the last of which is "# EOF">
//! ```
//!
//! **v1 compatibility rule.** The tenant token is optional, and a line
//! without one parses exactly as protocol v1 did and routes to the
//! `default` tenant — every pre-v2 client, workload file, and transcript
//! keeps working unchanged. Disambiguation is deterministic:
//!
//! * `STATS`/`METRICS` with **one** token after the verb is v1 (the token
//!   is the id); with **two** tokens it is v2 (`<tenant> <id>`).
//! * `EST`: the query text always begins with the keyword `SELECT`, so the
//!   token *before* `SELECT` is the id and anything before that is the
//!   tenant. `EST q1 SELECT …` is v1; `EST lubm q1 SELECT …` is v2.
//!   Consequently neither a tenant name nor an id may be the literal token
//!   `SELECT` ([`ServeBuilder`](crate::server::ServeBuilder) rejects such
//!   tenant names at build time).
//!
//! Error replies carry a structured **error taxonomy**: `code=<kebab-code>`
//! as the first message token, one of [`ErrorCode::Parse`] (malformed
//! request line or SPARQL), [`ErrorCode::UnknownTenant`] (the tenant token
//! names no served namespace), [`ErrorCode::Quota`] (the tenant's admission
//! quota is zero — suspended), or [`ErrorCode::Internal`]. A v1 parser that
//! treats everything after the id as the message still accepts the line —
//! the code token simply folds into the message text — and parsing a legacy
//! `ERR` line without a code yields [`Reply::Error`] with `code: None`.
//!
//! `METRICS` is the one multi-line reply: the header's `lines=<n>` field
//! frames the body (so a client reads exactly `n` more lines), and the body
//! independently ends with a `# EOF` sentinel for stream-oriented consumers.
//! Every other reply remains a single line.
//!
//! The `retrains`/`added`/`tv`/`uncovered` fields report the online
//! adaptation loop (retrain events, models added, last drift evaluation)
//! and `model` the published model's memory footprint in bytes (which
//! shrinks when a `--quantized` framework is served and follows adapter
//! swaps); all of them are optional on the parse side (defaulting to zero)
//! so transcripts from older servers still parse.
//!
//! `<id>` and `<tenant>` are any non-empty tokens without whitespace (and
//! not `SELECT`). Floats are rendered with Rust's shortest-round-trip
//! formatting, so parsing an `OK` reply recovers the estimate **bitwise** —
//! the serving parity suite relies on this. Blank lines and `#` comments
//! are skipped by the server before parsing, so a workload file can be
//! annotated.

use crate::latency::StatsSnapshot;
use std::fmt;

/// The tenant a v1 line (no tenant token) routes to.
pub const DEFAULT_TENANT: &str = "default";

/// A malformed request or reply line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolError {
    /// Description of the failure, sent back verbatim in an `ERR` reply.
    pub message: String,
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "protocol error: {}", self.message)
    }
}

impl std::error::Error for ProtocolError {}

/// The structured error taxonomy carried by `ERR` replies as
/// `code=<kebab-code>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request named a tenant the server does not serve.
    UnknownTenant,
    /// The request line or its SPARQL text did not parse.
    Parse,
    /// The tenant's admission quota is zero (suspended namespace). A
    /// tenant *at* its quota sheds with `OVERLOADED` instead — `quota`
    /// marks requests that can never be admitted, not transient pressure.
    Quota,
    /// An unexpected server-side failure.
    Internal,
}

impl ErrorCode {
    /// The kebab-case wire token.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::UnknownTenant => "unknown-tenant",
            ErrorCode::Parse => "parse",
            ErrorCode::Quota => "quota",
            ErrorCode::Internal => "internal",
        }
    }

    /// Parses a kebab-case code token.
    pub fn parse(token: &str) -> Option<ErrorCode> {
        match token {
            "unknown-tenant" => Some(ErrorCode::UnknownTenant),
            "parse" => Some(ErrorCode::Parse),
            "quota" => Some(ErrorCode::Quota),
            "internal" => Some(ErrorCode::Internal),
            _ => None,
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

fn err<T>(message: impl Into<String>) -> Result<T, ProtocolError> {
    Err(ProtocolError {
        message: message.into(),
    })
}

/// Splits the next whitespace-delimited token off `input`, returning it and
/// the rest with leading whitespace removed. Runs of whitespace are one
/// separator, so tab-aligned or double-spaced lines parse like single-spaced
/// ones.
fn next_token(input: &str) -> (&str, &str) {
    let input = input.trim_start();
    match input.find(char::is_whitespace) {
        Some(end) => (&input[..end], input[end..].trim_start()),
        None => (input, ""),
    }
}

fn parse_id(token: &str, what: &str) -> Result<String, ProtocolError> {
    if token.is_empty() {
        err(format!("{what} requires an id token"))
    } else {
        Ok(token.to_string())
    }
}

/// Parses the `[<tenant>] <id>` prefix of a `STATS`/`METRICS` line: one
/// token is a v1 id, two tokens are a v2 `<tenant> <id>` pair.
fn parse_scope(rest: &str, what: &str) -> Result<(Option<String>, String), ProtocolError> {
    let (first, after_first) = next_token(rest);
    let (second, extra) = next_token(after_first);
    if second.is_empty() {
        Ok((None, parse_id(first, what)?))
    } else if extra.trim_end().is_empty() {
        Ok((Some(first.to_string()), parse_id(second, what)?))
    } else {
        err(format!("unexpected tokens after {what} tenant and id: {extra:?}"))
    }
}

/// A client→server request line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// `EST [<tenant>] <id> <sparql>` — estimate the cardinality of a
    /// SPARQL BGP against one tenant's graph and models.
    Estimate {
        /// Target namespace; `None` is a v1 line routed to the
        /// [`DEFAULT_TENANT`].
        tenant: Option<String>,
        /// Client-chosen reply-matching token.
        id: String,
        /// The query text, `SELECT … WHERE { … }`.
        sparql: String,
    },
    /// `STATS [<tenant>] <id>` — report one tenant's serving counters and
    /// latency percentiles.
    Stats {
        /// Target namespace; `None` routes to the [`DEFAULT_TENANT`].
        tenant: Option<String>,
        /// Client-chosen reply-matching token.
        id: String,
    },
    /// `METRICS [<tenant>] <id>` — report one tenant's full metrics
    /// exposition (counters, stage histograms, kernel-dispatch counters,
    /// recent events). With an explicit tenant, every series carries a
    /// `tenant="<name>"` label.
    Metrics {
        /// Target namespace; `None` routes to the [`DEFAULT_TENANT`] and
        /// renders the v1 (unlabeled) exposition.
        tenant: Option<String>,
        /// Client-chosen reply-matching token.
        id: String,
    },
    /// `TENANTS <id>` — list the tenant namespaces this server serves.
    Tenants {
        /// Client-chosen reply-matching token.
        id: String,
    },
    /// `QUIT` — end the session.
    Quit,
}

impl Request {
    /// Parses one request line (already trimmed, non-empty).
    pub fn parse(line: &str) -> Result<Request, ProtocolError> {
        let (verb, rest) = next_token(line);
        match verb {
            "EST" => {
                // The query text always starts with SELECT; the token before
                // it is the id, an earlier token is the tenant.
                let (first, after_first) = next_token(rest);
                let id = parse_id(first, "EST")?;
                let (second, after_second) = next_token(after_first);
                if second == "SELECT" {
                    // v1: EST <id> SELECT …
                    Ok(Request::Estimate {
                        tenant: None,
                        id,
                        sparql: after_first.trim_end().to_string(),
                    })
                } else if next_token(after_second).0 == "SELECT" {
                    // v2: EST <tenant> <id> SELECT …
                    Ok(Request::Estimate {
                        tenant: Some(id),
                        id: second.to_string(),
                        sparql: after_second.trim_end().to_string(),
                    })
                } else {
                    err("EST requires a SPARQL query (SELECT …) after the id")
                }
            }
            "STATS" => {
                let (tenant, id) = parse_scope(rest, "STATS")?;
                Ok(Request::Stats { tenant, id })
            }
            "METRICS" => {
                let (tenant, id) = parse_scope(rest, "METRICS")?;
                Ok(Request::Metrics { tenant, id })
            }
            "TENANTS" => {
                let (id, extra) = next_token(rest);
                let id = parse_id(id, "TENANTS")?;
                if extra.trim_end().is_empty() {
                    Ok(Request::Tenants { id })
                } else {
                    err(format!("unexpected tokens after TENANTS id: {extra:?}"))
                }
            }
            "QUIT" => {
                if rest.trim_end().is_empty() {
                    Ok(Request::Quit)
                } else {
                    err(format!("unexpected tokens after QUIT: {rest:?}"))
                }
            }
            other => err(format!(
                "unknown request verb {other:?} (expected EST, STATS, METRICS, TENANTS, or QUIT)"
            )),
        }
    }

    /// The namespace this request targets ([`DEFAULT_TENANT`] for v1
    /// lines); `None` for verbs without a tenant scope.
    pub fn tenant(&self) -> Option<&str> {
        match self {
            Request::Estimate { tenant, .. } | Request::Stats { tenant, .. } | Request::Metrics { tenant, .. } => {
                Some(tenant.as_deref().unwrap_or(DEFAULT_TENANT))
            }
            Request::Tenants { .. } | Request::Quit => None,
        }
    }
}

impl fmt::Display for Request {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let scope = |tenant: &Option<String>| match tenant {
            Some(t) => format!("{t} "),
            None => String::new(),
        };
        match self {
            Request::Estimate { tenant, id, sparql } => write!(f, "EST {}{id} {sparql}", scope(tenant)),
            Request::Stats { tenant, id } => write!(f, "STATS {}{id}", scope(tenant)),
            Request::Metrics { tenant, id } => write!(f, "METRICS {}{id}", scope(tenant)),
            Request::Tenants { id } => write!(f, "TENANTS {id}"),
            Request::Quit => write!(f, "QUIT"),
        }
    }
}

/// A server→client reply line.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// `OK <id> <estimate> us=<micros>` — the estimate plus the request's
    /// measured in-server latency.
    Estimate {
        /// Echo of the request id.
        id: String,
        /// The cardinality estimate.
        estimate: f64,
        /// Submit→reply latency in microseconds.
        micros: f64,
    },
    /// `ERR <id> code=<kebab-code> <message>` — malformed line, unknown
    /// tenant, suspended quota, or internal error; `id` is `-` when the
    /// line was too malformed to carry one. The server always sends a
    /// code; `code: None` only arises from parsing a pre-v2 transcript.
    Error {
        /// Echo of the request id, or `-`.
        id: String,
        /// The structured error class (`None` on legacy lines without one).
        code: Option<ErrorCode>,
        /// Human-readable description.
        message: String,
    },
    /// `OVERLOADED <id> depth=<n>` — admission control shed the request
    /// because the tenant's bounded queue (its quota, depth `n`) was full.
    Overloaded {
        /// Echo of the request id.
        id: String,
        /// The configured queue depth that was exhausted.
        depth: usize,
    },
    /// `STATS <id> …` — serving counters and latency percentiles of the
    /// addressed tenant.
    Stats {
        /// Echo of the request id.
        id: String,
        /// The snapshot.
        snapshot: StatsSnapshot,
    },
    /// `TENANTS <id> <name> …` — the served namespaces, sorted.
    Tenants {
        /// Echo of the request id.
        id: String,
        /// Tenant names, ascending.
        names: Vec<String>,
    },
    /// `METRICS <id> lines=<n>` followed by `n` lines of exposition text —
    /// the one multi-line reply. `text` is the exposition body *without*
    /// the terminating `# EOF` line; Display appends it (and the header's
    /// `lines=` count includes it), so the wire form always ends with the
    /// sentinel.
    Metrics {
        /// Echo of the request id.
        id: String,
        /// The Prometheus-style exposition body (no `# EOF`). Empty when
        /// this value came from parsing a header line: the body travels on
        /// subsequent lines, which the line-oriented parser does not
        /// consume — clients read `lines=<n>` more lines themselves.
        text: String,
    },
}

impl Reply {
    /// An `ERR` reply with a structured code (the only form the server
    /// emits — every error site routes through here).
    pub fn error(id: impl Into<String>, code: ErrorCode, message: impl Into<String>) -> Reply {
        Reply::Error {
            id: id.into(),
            code: Some(code),
            message: message.into(),
        }
    }

    /// Parses one reply line (the client side of the protocol; the load
    /// generator and tests use this to close the loop).
    pub fn parse(line: &str) -> Result<Reply, ProtocolError> {
        let (verb, after_verb) = next_token(line);
        let (id_token, rest) = next_token(after_verb);
        match verb {
            "OK" => {
                let id = parse_id(id_token, "OK")?;
                let mut fields = rest.split_whitespace();
                let estimate: f64 = fields
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| ProtocolError {
                        message: "OK requires a numeric estimate".into(),
                    })?;
                let micros: f64 = fields
                    .next()
                    .and_then(|t| t.strip_prefix("us="))
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| ProtocolError {
                        message: "OK requires a us=<micros> field".into(),
                    })?;
                Ok(Reply::Estimate { id, estimate, micros })
            }
            "ERR" => {
                let id = parse_id(id_token, "ERR")?;
                // `code=<kebab-code>` as the first message token is the v2
                // taxonomy; a line without one is a legacy transcript and
                // the whole rest is the message.
                let (first, after_first) = next_token(rest);
                let (code, message) = match first.strip_prefix("code=").and_then(ErrorCode::parse) {
                    Some(code) => (Some(code), after_first.trim_end().to_string()),
                    None => (None, rest.trim_end().to_string()),
                };
                if message.is_empty() {
                    return err("ERR requires a message");
                }
                Ok(Reply::Error { id, code, message })
            }
            "OVERLOADED" => {
                let id = parse_id(id_token, "OVERLOADED")?;
                let depth = rest
                    .trim_end()
                    .strip_prefix("depth=")
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| ProtocolError {
                        message: "OVERLOADED requires a depth=<n> field".into(),
                    })?;
                Ok(Reply::Overloaded { id, depth })
            }
            "STATS" => {
                let id = parse_id(id_token, "STATS")?;
                let mut served = None;
                let mut shed = None;
                let mut batches = None;
                let mut retrains = None;
                let mut added = None;
                let mut evicted = None;
                let mut gen = None;
                let mut model = None;
                let mut tv = None;
                let mut uncovered = None;
                let mut p50 = None;
                let mut p95 = None;
                let mut p99 = None;
                for field in rest.split_whitespace() {
                    let Some((key, value)) = field.split_once('=') else {
                        return err(format!("malformed STATS field {field:?}"));
                    };
                    match key {
                        "served" => served = value.parse().ok(),
                        "shed" => shed = value.parse().ok(),
                        "batches" => batches = value.parse().ok(),
                        "retrains" => retrains = value.parse().ok(),
                        "added" => added = value.parse().ok(),
                        "evicted" => evicted = value.parse().ok(),
                        "gen" => gen = value.parse().ok(),
                        "model" => model = value.parse().ok(),
                        "tv" => tv = value.parse().ok(),
                        "uncovered" => uncovered = value.parse().ok(),
                        "p50us" => p50 = value.parse().ok(),
                        "p95us" => p95 = value.parse().ok(),
                        "p99us" => p99 = value.parse().ok(),
                        other => return err(format!("unknown STATS field {other:?}")),
                    }
                }
                match (served, shed, batches, p50, p95, p99) {
                    (Some(served), Some(shed), Some(batches), Some(p50_us), Some(p95_us), Some(p99_us)) => {
                        Ok(Reply::Stats {
                            id,
                            snapshot: StatsSnapshot {
                                served,
                                shed,
                                batches,
                                retrains: retrains.unwrap_or(0),
                                models_added: added.unwrap_or(0),
                                evicted: evicted.unwrap_or(0),
                                generation: gen.unwrap_or(0),
                                model_bytes: model.unwrap_or(0),
                                drift_tv: tv.unwrap_or(0.0),
                                drift_uncovered: uncovered.unwrap_or(0.0),
                                p50_us,
                                p95_us,
                                p99_us,
                            },
                        })
                    }
                    _ => err("STATS reply is missing fields"),
                }
            }
            "TENANTS" => {
                let id = parse_id(id_token, "TENANTS")?;
                let names: Vec<String> = rest.split_whitespace().map(str::to_string).collect();
                Ok(Reply::Tenants { id, names })
            }
            "METRICS" => {
                let id = parse_id(id_token, "METRICS")?;
                let has_lines = rest
                    .trim_end()
                    .strip_prefix("lines=")
                    .and_then(|t| t.parse::<u64>().ok())
                    .is_some();
                if !has_lines {
                    return err("METRICS requires a lines=<n> field");
                }
                // The body is on subsequent lines; a line-oriented parser
                // only sees the header. Callers consume `lines=<n>` more
                // lines (ending in `# EOF`) themselves.
                Ok(Reply::Metrics {
                    id,
                    text: String::new(),
                })
            }
            other => err(format!("unknown reply verb {other:?}")),
        }
    }
}

impl fmt::Display for Reply {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Reply::Estimate { id, estimate, micros } => write!(f, "OK {id} {estimate} us={micros}"),
            Reply::Error { id, code, message } => match code {
                Some(code) => write!(f, "ERR {id} code={code} {message}"),
                None => write!(f, "ERR {id} {message}"),
            },
            Reply::Overloaded { id, depth } => write!(f, "OVERLOADED {id} depth={depth}"),
            Reply::Stats { id, snapshot } => write!(f, "STATS {id} {snapshot}"),
            Reply::Tenants { id, names } => {
                write!(f, "TENANTS {id}")?;
                for name in names {
                    write!(f, " {name}")?;
                }
                Ok(())
            }
            Reply::Metrics { id, text } => {
                let body = text.trim_end_matches('\n');
                // lines= counts everything after the header, # EOF included.
                let lines = if body.is_empty() { 1 } else { body.lines().count() + 1 };
                if body.is_empty() {
                    write!(f, "METRICS {id} lines={lines}\n# EOF")
                } else {
                    write!(f, "METRICS {id} lines={lines}\n{body}\n# EOF")
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips() {
        let cases = [
            Request::Estimate {
                tenant: None,
                id: "q17".into(),
                sparql: "SELECT * WHERE { ?x :p ?y . ?y :q ?z . }".into(),
            },
            Request::Estimate {
                tenant: Some("lubm".into()),
                id: "q17".into(),
                sparql: "SELECT * WHERE { ?x :p ?y . }".into(),
            },
            Request::Stats {
                tenant: None,
                id: "s1".into(),
            },
            Request::Stats {
                tenant: Some("swdf".into()),
                id: "s1".into(),
            },
            Request::Metrics {
                tenant: None,
                id: "m1".into(),
            },
            Request::Metrics {
                tenant: Some("yago-a".into()),
                id: "m1".into(),
            },
            Request::Tenants { id: "t1".into() },
            Request::Quit,
        ];
        for req in cases {
            let line = req.to_string();
            assert_eq!(Request::parse(&line).unwrap(), req, "round trip of {line:?}");
        }
    }

    #[test]
    fn v1_lines_route_to_the_default_tenant() {
        for (line, expected_tenant) in [
            ("EST q1 SELECT * WHERE { ?x :p ?y . }", DEFAULT_TENANT),
            ("EST lubm q1 SELECT * WHERE { ?x :p ?y . }", "lubm"),
            ("STATS s1", DEFAULT_TENANT),
            ("STATS swdf s1", "swdf"),
            ("METRICS m1", DEFAULT_TENANT),
            ("METRICS swdf m1", "swdf"),
        ] {
            let req = Request::parse(line).unwrap();
            assert_eq!(req.tenant(), Some(expected_tenant), "tenant routing of {line:?}");
        }
        assert_eq!(Request::parse("TENANTS t0").unwrap().tenant(), None);
        assert_eq!(Request::parse("QUIT").unwrap().tenant(), None);
    }

    #[test]
    fn v2_est_keeps_the_id_before_select() {
        let req = Request::parse("EST lubm q3 SELECT * WHERE { ?x :p ?y . }").unwrap();
        assert_eq!(
            req,
            Request::Estimate {
                tenant: Some("lubm".into()),
                id: "q3".into(),
                sparql: "SELECT * WHERE { ?x :p ?y . }".into(),
            }
        );
    }

    #[test]
    fn reply_round_trips_estimates_bitwise() {
        for estimate in [1.0, 1e-300, 123456.789, 0.1 + 0.2, f64::MAX, 7.0 / 3.0] {
            let reply = Reply::Estimate {
                id: "a".into(),
                estimate,
                micros: 41.75,
            };
            let parsed = Reply::parse(&reply.to_string()).unwrap();
            let Reply::Estimate {
                estimate: back, micros, ..
            } = parsed
            else {
                panic!("wrong variant");
            };
            assert_eq!(
                back.to_bits(),
                estimate.to_bits(),
                "estimate must survive the wire bitwise"
            );
            assert_eq!(micros, 41.75);
        }
    }

    #[test]
    fn reply_round_trips_all_variants() {
        let cases = [
            Reply::error(
                "q1",
                ErrorCode::Parse,
                "unknown node term \":Nobody\" (not in the graph's dictionary)",
            ),
            Reply::error("q3", ErrorCode::UnknownTenant, "unknown tenant \"nope\""),
            Reply::error("q4", ErrorCode::Quota, "tenant \"idle\" is suspended (quota 0)"),
            Reply::error("q5", ErrorCode::Internal, "reply channel closed"),
            Reply::Overloaded {
                id: "q2".into(),
                depth: 1024,
            },
            Reply::Tenants {
                id: "t1".into(),
                names: vec!["default".into(), "lubm".into(), "swdf".into()],
            },
            Reply::Stats {
                id: "s".into(),
                snapshot: StatsSnapshot {
                    served: 12,
                    shed: 3,
                    batches: 4,
                    retrains: 2,
                    models_added: 3,
                    evicted: 1,
                    generation: 5,
                    model_bytes: 123456,
                    drift_tv: 0.875,
                    drift_uncovered: 0.25,
                    p50_us: 10.5,
                    p95_us: 99.25,
                    p99_us: 150.0,
                },
            },
        ];
        for reply in cases {
            let line = reply.to_string();
            assert_eq!(Reply::parse(&line).unwrap(), reply, "round trip of {line:?}");
        }
    }

    #[test]
    fn legacy_err_lines_without_codes_still_parse() {
        // A transcript from a pre-v2 server has no code token.
        let reply = Reply::parse("ERR q1 unknown node term \":Nobody\"").unwrap();
        assert_eq!(
            reply,
            Reply::Error {
                id: "q1".into(),
                code: None,
                message: "unknown node term \":Nobody\"".into(),
            }
        );
        // And re-displays without inventing one.
        assert_eq!(reply.to_string(), "ERR q1 unknown node term \":Nobody\"");

        // A v1 parser that treats everything after the id as the message
        // still sees the v2 line: the code token folds into the message.
        let v2_line = Reply::error("q1", ErrorCode::Parse, "bad query").to_string();
        assert_eq!(v2_line, "ERR q1 code=parse bad query");
        let (verb, rest) = next_token(&v2_line);
        let (id, v1_message) = next_token(rest);
        assert_eq!((verb, id), ("ERR", "q1"));
        assert_eq!(v1_message, "code=parse bad query");
    }

    #[test]
    fn error_codes_round_trip_the_taxonomy() {
        for code in [
            ErrorCode::UnknownTenant,
            ErrorCode::Parse,
            ErrorCode::Quota,
            ErrorCode::Internal,
        ] {
            assert_eq!(ErrorCode::parse(code.as_str()), Some(code));
            assert!(
                code.as_str().chars().all(|c| c.is_ascii_lowercase() || c == '-'),
                "{code} is not kebab-case"
            );
        }
        assert_eq!(ErrorCode::parse("no-such-code"), None);
        // An unknown code token is legacy-folded into the message, not lost.
        let reply = Reply::parse("ERR q1 code=future-code something new").unwrap();
        let Reply::Error { code, message, .. } = reply else {
            panic!("wrong variant");
        };
        assert_eq!(code, None);
        assert_eq!(message, "code=future-code something new");
    }

    #[test]
    fn metrics_reply_frames_its_body() {
        let reply = Reply::Metrics {
            id: "m1".into(),
            text: "# HELP x y\n# TYPE x counter\nx 3\n".into(),
        };
        let wire = reply.to_string();
        let mut lines = wire.lines();
        // Header counts body lines + the # EOF sentinel.
        assert_eq!(lines.next(), Some("METRICS m1 lines=4"));
        assert_eq!(wire.lines().last(), Some("# EOF"));
        assert_eq!(wire.lines().count(), 5);
        assert!(!wire.ends_with('\n'), "transport's writeln! supplies the final newline");

        // The header alone parses back into a (body-less) Metrics reply.
        let parsed = Reply::parse("METRICS m1 lines=4").unwrap();
        assert_eq!(
            parsed,
            Reply::Metrics {
                id: "m1".into(),
                text: String::new()
            }
        );

        // Empty body still frames a lone # EOF.
        let empty = Reply::Metrics {
            id: "m2".into(),
            text: String::new(),
        };
        assert_eq!(empty.to_string(), "METRICS m2 lines=1\n# EOF");
    }

    #[test]
    fn stats_adaptation_fields_are_optional() {
        // A transcript from a server without an adapter (or an older one)
        // carries no retrains/added/model/tv/uncovered fields; they default
        // to 0.
        let reply = Reply::parse("STATS s served=5 shed=0 batches=2 p50us=1.5 p95us=2.5 p99us=3.5").unwrap();
        let Reply::Stats { snapshot, .. } = reply else {
            panic!("wrong variant");
        };
        assert_eq!(snapshot.retrains, 0);
        assert_eq!(snapshot.models_added, 0);
        assert_eq!(snapshot.model_bytes, 0);
        assert_eq!(snapshot.drift_tv, 0.0);
        assert_eq!(snapshot.drift_uncovered, 0.0);
        assert_eq!(snapshot.served, 5);
    }

    #[test]
    fn repeated_whitespace_is_one_separator() {
        // Tab-aligned or double-spaced lines are well-formed per the grammar.
        let req = Request::parse("EST \t q1   SELECT * WHERE { ?x :p ?y . }").unwrap();
        assert_eq!(
            req,
            Request::Estimate {
                tenant: None,
                id: "q1".into(),
                sparql: "SELECT * WHERE { ?x :p ?y . }".into(),
            }
        );
        let req = Request::parse("EST \t lubm \t q1   SELECT * WHERE { ?x :p ?y . }").unwrap();
        assert_eq!(
            req,
            Request::Estimate {
                tenant: Some("lubm".into()),
                id: "q1".into(),
                sparql: "SELECT * WHERE { ?x :p ?y . }".into(),
            }
        );
        assert_eq!(
            Request::parse("STATS   s1").unwrap(),
            Request::Stats {
                tenant: None,
                id: "s1".into()
            }
        );
        let reply = Reply::parse("OK  q1   2.5 us=7").unwrap();
        assert_eq!(
            reply,
            Reply::Estimate {
                id: "q1".into(),
                estimate: 2.5,
                micros: 7.0,
            }
        );
        assert_eq!(
            Reply::parse("OVERLOADED  q2  depth=8").unwrap(),
            Reply::Overloaded {
                id: "q2".into(),
                depth: 8
            }
        );
    }

    #[test]
    fn malformed_requests_are_rejected_with_reasons() {
        for (line, needle) in [
            ("FOO q1 whatever", "unknown request verb"),
            ("EST", "requires an id"),
            ("EST q1", "requires a SPARQL query"),
            ("EST q1    ", "requires a SPARQL query"),
            // Neither the second nor the third token starts the query text.
            ("EST q1 whatever", "requires a SPARQL query"),
            ("EST t q1 whatever", "requires a SPARQL query"),
            ("STATS", "requires an id"),
            ("STATS t s1 extra", "unexpected tokens"),
            ("METRICS", "requires an id"),
            ("METRICS t m1 extra", "unexpected tokens"),
            ("TENANTS", "requires an id"),
            ("TENANTS t0 extra", "unexpected tokens"),
            ("QUIT now", "unexpected tokens"),
        ] {
            let e = Request::parse(line).unwrap_err();
            assert!(
                e.message.contains(needle),
                "{line:?} should fail mentioning {needle:?}, got {:?}",
                e.message
            );
        }
    }

    #[test]
    fn malformed_replies_are_rejected() {
        for line in [
            "OK q1",
            "OK q1 notanumber us=3",
            "OK q1 3.5",
            "OK q1 3.5 us=abc",
            "OVERLOADED q1",
            "OVERLOADED q1 depth=x",
            "ERR q1",
            "STATS s1 served=1",
            "STATS s1 bogus=2",
            "METRICS m1",
            "METRICS m1 lines=abc",
            "TENANTS",
            "NOPE q1 1",
        ] {
            assert!(Reply::parse(line).is_err(), "{line:?} should not parse");
        }
    }
}
