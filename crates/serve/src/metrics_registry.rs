//! The single source of truth for every `lmkg_*` series the stack can
//! expose. Renderers ([`crate::expose`], the event families in
//! `lmkg-obs`, the kernel profile) construct names ad hoc; this table is
//! what keeps them honest:
//!
//! * `lmkg-xtask check` (L4) statically cross-checks every name built in
//!   a renderer string literal against this table, both directions — an
//!   unregistered series or an orphaned registry row fails the lint.
//! * `tests/tests/metrics_surface.rs` asserts a live `METRICS` scrape
//!   carries exactly these families, so the table can't drift from the
//!   runtime either.
//!
//! Adding a metric therefore takes two edits (renderer + this table) and
//! removing one takes two as well — the lint fails on a one-sided edit.

/// Exposition kind of a series family, mirroring the `# TYPE` header
/// (`Info` families render a `# HELP` line only, with no samples).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotone count; renders `# TYPE <name> counter`.
    Counter,
    /// Point-in-time value; renders `# TYPE <name> gauge`.
    Gauge,
    /// Log-bucketed distribution with `_bucket`/`_sum`/`_count` samples.
    Histogram,
    /// Help-only family (a `# HELP` line, no samples).
    Info,
}

impl MetricKind {
    /// The `# TYPE` keyword, or `None` for help-only info families.
    pub fn type_keyword(self) -> Option<&'static str> {
        match self {
            MetricKind::Counter => Some("counter"),
            MetricKind::Gauge => Some("gauge"),
            MetricKind::Histogram => Some("histogram"),
            MetricKind::Info => None,
        }
    }
}

/// One registered series family.
#[derive(Debug, Clone, Copy)]
pub struct MetricDef {
    /// The family name as it appears on the wire (`lmkg_*`).
    pub name: &'static str,
    /// Exposition kind (the `# TYPE` keyword).
    pub kind: MetricKind,
    /// What the family measures — a reader-facing summary, not the
    /// exposition help text (that lives next to the renderer call).
    pub help: &'static str,
}

use MetricKind::{Counter, Gauge, Histogram, Info};

/// Every series family any exposition in the workspace may render.
pub const REGISTRY: &[MetricDef] = &[
    MetricDef {
        name: "lmkg_uptime_seconds",
        kind: Gauge,
        help: "seconds since the service started",
    },
    MetricDef {
        name: "lmkg_requests_served_total",
        kind: Counter,
        help: "estimates returned",
    },
    MetricDef {
        name: "lmkg_requests_shed_total",
        kind: Counter,
        help: "requests shed by admission control",
    },
    MetricDef {
        name: "lmkg_parse_errors_total",
        kind: Counter,
        help: "request lines that failed to parse",
    },
    MetricDef {
        name: "lmkg_batches_total",
        kind: Counter,
        help: "micro-batches forwarded",
    },
    MetricDef {
        name: "lmkg_sessions_total",
        kind: Counter,
        help: "sessions accepted",
    },
    MetricDef {
        name: "lmkg_sessions_active",
        kind: Gauge,
        help: "sessions currently open",
    },
    MetricDef {
        name: "lmkg_bytes_read_total",
        kind: Counter,
        help: "request bytes read",
    },
    MetricDef {
        name: "lmkg_bytes_written_total",
        kind: Counter,
        help: "reply bytes written",
    },
    MetricDef {
        name: "lmkg_queue_depth",
        kind: Gauge,
        help: "admission queue occupancy",
    },
    MetricDef {
        name: "lmkg_queue_capacity",
        kind: Gauge,
        help: "admission queue bound",
    },
    MetricDef {
        name: "lmkg_model_bytes",
        kind: Gauge,
        help: "resident model memory",
    },
    MetricDef {
        name: "lmkg_retrains_total",
        kind: Counter,
        help: "adaptation retrains published",
    },
    MetricDef {
        name: "lmkg_models_added_total",
        kind: Counter,
        help: "models added by adaptation",
    },
    MetricDef {
        name: "lmkg_drift_tv",
        kind: Gauge,
        help: "workload drift, total-variation distance",
    },
    MetricDef {
        name: "lmkg_drift_uncovered",
        kind: Gauge,
        help: "workload share not covered by a model",
    },
    MetricDef {
        name: "lmkg_stage_us",
        kind: Histogram,
        help: "per-stage latency (admission/batch/forward/reply)",
    },
    MetricDef {
        name: "lmkg_batch_size",
        kind: Histogram,
        help: "coalesced batch sizes",
    },
    MetricDef {
        name: "lmkg_request_latency_window_us",
        kind: Histogram,
        help: "end-to-end latency, sliding window",
    },
    MetricDef {
        name: "lmkg_retrain_duration_us",
        kind: Histogram,
        help: "adaptation retrain wall time",
    },
    MetricDef {
        name: "lmkg_kernel_dispatch_total",
        kind: Counter,
        help: "matmuls by compute path and kernel",
    },
    MetricDef {
        name: "lmkg_kernel_flops_total",
        kind: Counter,
        help: "floating-point ops issued by matmuls",
    },
    MetricDef {
        name: "lmkg_workspace_high_water_bytes",
        kind: Gauge,
        help: "largest inference-workspace footprint",
    },
    MetricDef {
        name: "lmkg_kernel_active",
        kind: Info,
        help: "which SIMD kernel runtime dispatch selected",
    },
    MetricDef {
        name: "lmkg_events_total",
        kind: Counter,
        help: "structured events by kind",
    },
    MetricDef {
        name: "lmkg_events_by_level_total",
        kind: Counter,
        help: "structured events by severity",
    },
];

/// Looks up a family by exact name.
pub fn lookup(name: &str) -> Option<&'static MetricDef> {
    REGISTRY.iter().find(|d| d.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = REGISTRY.iter().map(|d| d.name).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len(), "duplicate registry entries");
    }

    #[test]
    fn every_name_is_a_well_formed_lmkg_series() {
        for d in REGISTRY {
            assert!(
                d.name.starts_with("lmkg_")
                    && d.name
                        .bytes()
                        .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_'),
                "bad series name {:?}",
                d.name
            );
            assert!(!d.help.is_empty(), "{} has no help text", d.name);
        }
    }

    #[test]
    fn lookup_finds_registered_families() {
        assert_eq!(lookup("lmkg_stage_us").map(|d| d.kind), Some(MetricKind::Histogram));
        assert!(lookup("lmkg_nope").is_none());
    }
}
