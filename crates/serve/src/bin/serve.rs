//! The `serve` binary: train an LMKG framework once (or one per tenant),
//! then serve estimates.
//!
//! ```text
//! serve pipe    [model opts] [serve opts]          stdin/stdout protocol session
//! serve tcp     [model opts] [serve opts] --addr A TCP listener, one session per connection
//! serve loadgen [model opts] [serve opts] [--qps N] [--requests N] [--json PATH]
//!                                                  closed-loop micro-batched vs per-request run
//! serve sample  [model opts] [--count N]           print request lines for the model's graph
//! ```
//!
//! `sample` and the serving modes share the model options (dataset, scale,
//! seed), so sampled request lines always resolve against the same
//! dictionaries the server loads — pipe a `sample` file straight into
//! `pipe`, which is exactly what the CI smoke test does. With repeated
//! `--tenant NAME=DATASET[:SCALE[:SEED]]` flags one process serves several
//! graphs at once (e.g. LUBM + SWDF), each under its own namespace; v2
//! request lines address a namespace (`EST <tenant> <id> <sparql>`), v1
//! lines route to the `default` tenant.

use lmkg::framework::{Grouping, Lmkg, LmkgConfig, ModelType};
use lmkg::supervised::LmkgSConfig;
use lmkg::{CardinalityEstimator, QuantMode, WorkloadMonitor};

use lmkg_data::workload::{self, WorkloadConfig};
use lmkg_data::{Dataset, Scale};
use lmkg_modelstore::ModelStore;
use lmkg_obs::Level;
use lmkg_serve::{
    loadgen, serve_stream, serve_tcp, Adapter, AdapterConfig, BatchConfig, EstimationService, LoadgenConfig,
    ServeBuilder, SharedMonitor, ShiftConfig, ShutdownFlag, TenantAdapterSpec, TenantSpec, DEFAULT_TENANT,
};
use lmkg_store::{sparql, KnowledgeGraph, Query, QueryShape};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const USAGE: &str = "\
serve — micro-batching LMKG estimation server

USAGE: serve <pipe|tcp|loadgen|sample> [OPTIONS]

Model options (shared by every mode):
  --dataset lubm|swdf|yago   graph generator              [lubm]
  --scale ci|default|paper   dataset scale                [ci]
  --seed N                   generator seed               [42]
  --sizes A,B,...            covered query sizes          [2,3]
  --hidden A,B,...           LMKG-S hidden widths         [256,256]
  --epochs N                 LMKG-S training epochs       [20]
  --train-queries N          training queries per model   [400]
  --quantized int8|bf16      serve a quantized snapshot of the trained
                             framework (smaller model, f32 accumulate)

Multi-tenant options (pipe, tcp, sample; repeatable):
  --tenant NAME=DATASET[:SCALE[:SEED]]
                             serve DATASET under namespace NAME; repeat the
                             flag for more tenants. Without --tenant the
                             model options above serve as the single
                             'default' tenant, exactly as before.

Serving options (pipe, tcp, loadgen):
  --window-us N              micro-batch window, microseconds   [2000]
  --max-batch N              flush size                         [64]
  --queue-depth N            admission queue bound              [1024]
  --workers N                batcher worker threads             [2]
  --no-obs                   disable stage-level latency tracing (counters,
                             the latency window, and events stay on)
  --metrics-every N          dump the METRICS exposition to stderr every
                             N seconds (pipe, tcp; 0 = off)     [0]

Model lifecycle options (pipe, tcp, loadgen):
  --model-dir DIR            versioned snapshot store: cold-start from the
                             newest on-disk generation when one exists
                             (skipping training entirely), else train once
                             and publish generation 1. With --adapt every
                             retrain/evict publishes a new generation.
                             Multi-tenant runs store under DIR/<tenant>.
  --memory-budget BYTES      cap the served framework's memory: evict
                             least-used covered models until it fits,
                             never uncovering a cell with live traffic
                             (enforced at startup and, with --adapt, on
                             every adapter tick)

Adaptation options (pipe, tcp; the workload-shift loop):
  --adapt                    enable the monitor->retrain->swap loop
  --adapt-interval-ms N      drift check cadence                [500]
  --adapt-window N           monitor sliding window, queries    [512]
  --adapt-min-observed N     observations before drift counts   [64]
  --adapt-tv T               total-variation retrain threshold  [0.3]
  --adapt-uncovered T        uncovered-share retrain threshold  [0.2]
  --adapt-max-models N       hard cap on total trained models   [32]

Mode options:
  tcp:      --addr HOST:PORT     listen address    [127.0.0.1:7878]
            (SIGINT/SIGTERM shut down gracefully: sessions drain, the
             batcher flushes, the adapter joins)
  loadgen:  --qps N               offered load; 0 auto-calibrates  [0]
            --requests N          measured requests per run        [5000]
            --json PATH           where the report lands           [BENCH_serve.json]
            --workload PATH       replay queries from a file (EST lines or
                                  bare SPARQL) instead of sampling
            --shift-size N        also run the two-phase shifted-workload
                                  adaptation benchmark onto star-N (0 = off) [0]
            --tenant NAME         address the generated request lines to
                                  namespace NAME (bare name, no '=')
  sample:   --count N             request lines to print (per tenant) [20]

Protocol v2: 'EST [<tenant>] <id> <sparql>' | 'STATS [<tenant>] <id>' |
'METRICS [<tenant>] <id>' | 'TENANTS <id>' | 'QUIT' per line; a line with
no tenant token (the v1 grammar) routes to the 'default' tenant. Replies
are 'OK <id> <estimate> us=<micros>' | 'ERR <id> code=<kebab-code> <msg>' |
'OVERLOADED <id> depth=<n>' | 'STATS <id> served=... retrains=... tv=...
p50us=...' | 'TENANTS <id> <name> ...' | a multi-line 'METRICS <id>
lines=<n>' exposition ending in '# EOF'. LMKG_LOG=off|error|warn|info|debug
filters event echo to stderr.
";

/// One `--tenant NAME=DATASET[:SCALE[:SEED]]` spec; scale/seed fall back
/// to the shared model options when omitted.
struct TenantCliSpec {
    name: String,
    dataset: Dataset,
    scale: Option<Scale>,
    seed: Option<u64>,
}

struct Options {
    mode: String,
    dataset: Dataset,
    scale: Scale,
    seed: u64,
    /// `--tenant NAME=…` specs (pipe, tcp, sample). Empty = single
    /// `default` tenant from the shared model options.
    tenants: Vec<TenantCliSpec>,
    /// `--tenant NAME` (loadgen): the namespace request lines address.
    loadgen_tenant: Option<String>,
    sizes: Vec<usize>,
    hidden: Vec<usize>,
    epochs: usize,
    train_queries: usize,
    batch: BatchConfig,
    addr: String,
    qps: f64,
    requests: usize,
    json: String,
    count: usize,
    adapt: bool,
    adapter: AdapterConfig,
    workload: Option<String>,
    shift_size: usize,
    quantized: Option<QuantMode>,
    metrics_every: u64,
    /// `--model-dir DIR`: root of the versioned snapshot store (per-tenant
    /// subdirectories in multi-tenant runs).
    model_dir: Option<std::path::PathBuf>,
    /// `--memory-budget BYTES`: eviction threshold for the served set.
    memory_budget: Option<usize>,
}

fn fail(message: &str) -> ! {
    eprintln!("error: {message}\n\n{USAGE}");
    std::process::exit(2);
}

fn parse_list(value: &str, flag: &str) -> Vec<usize> {
    let out: Vec<usize> = value.split(',').filter_map(|t| t.trim().parse().ok()).collect();
    if out.is_empty() {
        fail(&format!(
            "{flag} expects a comma-separated list of integers, got {value:?}"
        ));
    }
    out
}

fn parse_dataset(value: &str) -> Dataset {
    match value {
        "lubm" => Dataset::LubmLike,
        "swdf" => Dataset::SwdfLike,
        "yago" => Dataset::YagoLike,
        other => fail(&format!("unknown dataset {other:?}")),
    }
}

fn parse_scale(value: &str) -> Scale {
    match value {
        "ci" => Scale::Ci,
        "default" => Scale::Default,
        "paper" => Scale::Paper,
        other => fail(&format!("unknown scale {other:?}")),
    }
}

/// Parses a `NAME=DATASET[:SCALE[:SEED]]` tenant spec.
fn parse_tenant_spec(value: &str) -> TenantCliSpec {
    let (name, rest) = value
        .split_once('=')
        .unwrap_or_else(|| fail(&format!("--tenant expects NAME=DATASET[:SCALE[:SEED]], got {value:?}")));
    if name.is_empty() || name.contains(char::is_whitespace) || name == "SELECT" {
        fail(&format!(
            "invalid tenant name {name:?} (must be non-empty, whitespace-free, and not \"SELECT\")"
        ));
    }
    let mut parts = rest.split(':');
    let dataset = parse_dataset(parts.next().unwrap_or_default());
    let scale = parts.next().map(parse_scale);
    let seed = parts.next().map(|s| {
        s.parse()
            .unwrap_or_else(|_| fail(&format!("--tenant seed must be an integer, got {s:?}")))
    });
    if parts.next().is_some() {
        fail(&format!("--tenant has trailing fields in {value:?}"));
    }
    TenantCliSpec {
        name: name.to_string(),
        dataset,
        scale,
        seed,
    }
}

fn parse_options() -> Options {
    let mut args = std::env::args().skip(1);
    let mode = match args.next() {
        Some(m) if ["pipe", "tcp", "loadgen", "sample"].contains(&m.as_str()) => m,
        Some(m) if ["help", "--help", "-h"].contains(&m.as_str()) => {
            println!("{USAGE}");
            std::process::exit(0);
        }
        Some(m) => fail(&format!("unknown mode {m:?}")),
        None => fail("a mode is required"),
    };
    let mut opts = Options {
        mode,
        dataset: Dataset::LubmLike,
        scale: Scale::Ci,
        seed: 42,
        tenants: Vec::new(),
        loadgen_tenant: None,
        sizes: vec![2, 3],
        hidden: vec![256, 256],
        epochs: 20,
        train_queries: 400,
        batch: BatchConfig::default(),
        addr: "127.0.0.1:7878".into(),
        qps: 0.0,
        requests: 5000,
        json: "BENCH_serve.json".into(),
        count: 20,
        adapt: false,
        adapter: AdapterConfig::default(),
        workload: None,
        shift_size: 0,
        quantized: None,
        metrics_every: 0,
        model_dir: None,
        memory_budget: None,
    };
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| args.next().unwrap_or_else(|| fail(&format!("{flag} expects a value")));
        match flag.as_str() {
            "--dataset" => opts.dataset = parse_dataset(&value("--dataset")),
            "--scale" => opts.scale = parse_scale(&value("--scale")),
            "--tenant" => {
                let spec = value("--tenant");
                if spec.contains('=') {
                    opts.tenants.push(parse_tenant_spec(&spec));
                } else {
                    // A bare name is the loadgen target namespace.
                    opts.loadgen_tenant = Some(spec);
                }
            }
            "--seed" => {
                opts.seed = value("--seed")
                    .parse()
                    .unwrap_or_else(|_| fail("--seed expects an integer"))
            }
            "--sizes" => opts.sizes = parse_list(&value("--sizes"), "--sizes"),
            "--hidden" => opts.hidden = parse_list(&value("--hidden"), "--hidden"),
            "--epochs" => {
                opts.epochs = value("--epochs")
                    .parse()
                    .unwrap_or_else(|_| fail("--epochs expects an integer"))
            }
            "--train-queries" => {
                opts.train_queries = value("--train-queries")
                    .parse()
                    .unwrap_or_else(|_| fail("--train-queries expects an integer"))
            }
            "--window-us" => {
                opts.batch.window = Duration::from_micros(
                    value("--window-us")
                        .parse()
                        .unwrap_or_else(|_| fail("--window-us expects an integer")),
                )
            }
            "--max-batch" => {
                opts.batch.max_batch = value("--max-batch")
                    .parse()
                    .unwrap_or_else(|_| fail("--max-batch expects an integer"))
            }
            "--queue-depth" => {
                opts.batch.queue_depth = value("--queue-depth")
                    .parse()
                    .unwrap_or_else(|_| fail("--queue-depth expects an integer"))
            }
            "--workers" => {
                opts.batch.workers = value("--workers")
                    .parse()
                    .unwrap_or_else(|_| fail("--workers expects an integer"))
            }
            "--addr" => opts.addr = value("--addr"),
            "--qps" => {
                opts.qps = value("--qps")
                    .parse()
                    .unwrap_or_else(|_| fail("--qps expects a number"))
            }
            "--requests" => {
                opts.requests = value("--requests")
                    .parse()
                    .unwrap_or_else(|_| fail("--requests expects an integer"))
            }
            "--json" => opts.json = value("--json"),
            "--count" => {
                opts.count = value("--count")
                    .parse()
                    .unwrap_or_else(|_| fail("--count expects an integer"))
            }
            "--adapt" => opts.adapt = true,
            "--adapt-interval-ms" => {
                opts.adapter.interval = Duration::from_millis(
                    value("--adapt-interval-ms")
                        .parse()
                        .unwrap_or_else(|_| fail("--adapt-interval-ms expects an integer")),
                )
            }
            "--adapt-window" => {
                opts.adapter.window = value("--adapt-window")
                    .parse()
                    .unwrap_or_else(|_| fail("--adapt-window expects an integer"))
            }
            "--adapt-min-observed" => {
                opts.adapter.min_observed = value("--adapt-min-observed")
                    .parse()
                    .unwrap_or_else(|_| fail("--adapt-min-observed expects an integer"))
            }
            "--adapt-tv" => {
                opts.adapter.tv_threshold = value("--adapt-tv")
                    .parse()
                    .unwrap_or_else(|_| fail("--adapt-tv expects a number"))
            }
            "--adapt-uncovered" => {
                opts.adapter.uncovered_threshold = value("--adapt-uncovered")
                    .parse()
                    .unwrap_or_else(|_| fail("--adapt-uncovered expects a number"))
            }
            "--adapt-max-models" => {
                opts.adapter.max_models = value("--adapt-max-models")
                    .parse()
                    .unwrap_or_else(|_| fail("--adapt-max-models expects an integer"))
            }
            "--quantized" => {
                let mode = value("--quantized");
                opts.quantized = Some(
                    QuantMode::parse(&mode)
                        .unwrap_or_else(|| fail(&format!("--quantized expects int8 or bf16, got {mode:?}"))),
                )
            }
            "--no-obs" => opts.batch.obs = false,
            "--metrics-every" => {
                opts.metrics_every = value("--metrics-every")
                    .parse()
                    .unwrap_or_else(|_| fail("--metrics-every expects an integer (seconds)"))
            }
            "--model-dir" => opts.model_dir = Some(value("--model-dir").into()),
            "--memory-budget" => {
                opts.memory_budget = Some(
                    value("--memory-budget")
                        .parse()
                        .unwrap_or_else(|_| fail("--memory-budget expects a byte count")),
                )
            }
            "--workload" => opts.workload = Some(value("--workload")),
            "--shift-size" => {
                opts.shift_size = value("--shift-size")
                    .parse()
                    .unwrap_or_else(|_| fail("--shift-size expects an integer"))
            }
            other => fail(&format!("unknown option {other:?}")),
        }
    }
    opts
}

/// A star/chain workload across the configured sizes, cycling cells so the
/// mix exercises direct routing and decomposition alike.
fn sample_workload(graph: &KnowledgeGraph, opts: &Options, count: usize) -> Vec<Query> {
    let cells: Vec<(QueryShape, usize)> = [QueryShape::Star, QueryShape::Chain]
        .into_iter()
        .flat_map(|shape| opts.sizes.iter().map(move |&k| (shape, k)))
        .collect();
    let per_cell = count.div_ceil(cells.len()).max(1);
    let mut by_cell: Vec<Vec<Query>> = cells
        .iter()
        .map(|&(shape, size)| {
            let mut wl = WorkloadConfig::test_default(shape, size, opts.seed ^ 0x5e);
            wl.count = per_cell;
            workload::generate(graph, &wl).into_iter().map(|lq| lq.query).collect()
        })
        .collect();
    // Interleave cells: star-2, chain-2, star-3, chain-3, star-2, …
    let mut out = Vec::with_capacity(count);
    let n_cells = by_cell.len();
    let mut i = 0;
    while out.len() < count && by_cell.iter().any(|c| !c.is_empty()) {
        if let Some(q) = by_cell[i % n_cells].pop() {
            out.push(q);
        }
        i += 1;
    }
    if out.is_empty() {
        fail("workload generation produced no queries (dataset too small for the requested sizes?)");
    }
    out
}

/// The framework configuration the CLI options describe — shared by the
/// train path and the cold-start path (the adapter extends a loaded
/// snapshot with these hyperparameters too).
fn lmkg_config(opts: &Options) -> LmkgConfig {
    LmkgConfig {
        model_type: ModelType::Supervised,
        grouping: Grouping::BySize,
        shapes: vec![QueryShape::Star, QueryShape::Chain],
        sizes: opts.sizes.clone(),
        queries_per_size: opts.train_queries,
        s_config: LmkgSConfig {
            hidden: opts.hidden.clone(),
            epochs: opts.epochs,
            ..Default::default()
        },
        u_config: Default::default(),
        workload_seed: opts.seed,
    }
}

/// Builds the served framework plus the configuration it was built with —
/// the adapter extends with the same hyperparameters and budget.
fn build_lmkg(graph: &KnowledgeGraph, opts: &Options) -> (Arc<Lmkg>, LmkgConfig) {
    let cfg = lmkg_config(opts);
    eprintln!(
        "serve: building LMKG-S (sizes {:?}, hidden {:?}, {} epochs, {} train queries/model) …",
        opts.sizes, opts.hidden, opts.epochs, opts.train_queries
    );
    let mut lmkg = Lmkg::build(graph, &cfg);
    if let Some(mode) = opts.quantized {
        let f32_bytes = lmkg.memory_bytes();
        lmkg = lmkg.quantized(mode);
        eprintln!(
            "serve: quantized the framework to {} — model {} -> {} bytes ({:.2}x smaller)",
            mode.name(),
            f32_bytes,
            lmkg.memory_bytes(),
            f32_bytes as f64 / lmkg.memory_bytes().max(1) as f64
        );
    }
    (Arc::new(lmkg), cfg)
}

/// One tenant, materialized: its named graph plus the trained (or
/// cold-started) framework, the configuration it was built with, and its
/// slice of the model store.
struct TenantRuntime {
    name: String,
    graph: Arc<KnowledgeGraph>,
    base: Arc<Lmkg>,
    build_cfg: LmkgConfig,
    /// The tenant's snapshot store (`--model-dir`, per-tenant subdirectory
    /// in multi-tenant runs).
    store: Option<ModelStore>,
    /// The generation `base` corresponds to on disk: loaded at cold-start,
    /// or published right after training. `None` without `--model-dir`.
    generation: Option<u64>,
    /// Whether `base` was loaded from a snapshot instead of trained.
    cold_started: bool,
    /// Models dropped by the startup budget pass, so `STATS … evicted=`
    /// counts them alongside the adapter's runtime evictions.
    startup_evicted: usize,
}

/// The named (tenant, graph) pairs this invocation serves: one per
/// `--tenant` spec, or the shared model options as the single `default`
/// tenant when no spec was given.
fn tenant_graphs(opts: &Options) -> Vec<(String, Arc<KnowledgeGraph>)> {
    if opts.tenants.is_empty() {
        eprintln!(
            "serve: generating {:?} graph at {:?} scale (seed {}) …",
            opts.dataset, opts.scale, opts.seed
        );
        return vec![(
            DEFAULT_TENANT.to_string(),
            Arc::new(opts.dataset.generate(opts.scale, opts.seed)),
        )];
    }
    opts.tenants
        .iter()
        .map(|spec| {
            let scale = spec.scale.unwrap_or(opts.scale);
            let seed = spec.seed.unwrap_or(opts.seed);
            eprintln!(
                "serve: [{}] generating {:?} graph at {:?} scale (seed {}) …",
                spec.name, spec.dataset, scale, seed
            );
            (spec.name.clone(), Arc::new(spec.dataset.generate(scale, seed)))
        })
        .collect()
}

/// Opens the snapshot store for one tenant: `--model-dir` itself for a
/// single-tenant run, `--model-dir/<tenant>` when several tenants share
/// the root (each tenant's generations must not clobber another's).
fn tenant_store(opts: &Options, name: &str) -> Option<ModelStore> {
    let root = opts.model_dir.as_ref()?;
    let dir = if opts.tenants.is_empty() {
        root.clone()
    } else {
        root.join(name)
    };
    match ModelStore::open(&dir) {
        Ok(store) => Some(store),
        Err(e) => fail(&format!("cannot open model store {}: {e}", dir.display())),
    }
}

/// Materializes one framework per tenant (pipe and tcp modes): cold-start
/// from the newest store generation when one exists, train (and publish
/// generation 1) otherwise, then enforce the memory budget once up front.
fn tenant_runtimes(opts: &Options) -> Vec<TenantRuntime> {
    tenant_graphs(opts)
        .into_iter()
        .map(|(name, graph)| {
            let store = tenant_store(opts, &name);
            let mut generation = None;
            let mut cold_started = false;
            let (mut base, build_cfg) = match &store {
                Some(store) => match store.load_latest() {
                    Ok((model, gen)) => {
                        eprintln!(
                            "serve: [{name}] cold-start — loaded generation {gen} from {} ({} model(s), {} bytes); training skipped",
                            store.dir().display(),
                            model.model_count(),
                            model.total_memory_bytes()
                        );
                        generation = Some(gen);
                        cold_started = true;
                        (Arc::new(model), lmkg_config(opts))
                    }
                    Err(lmkg_modelstore::StoreError::NoSnapshot) => {
                        if name != DEFAULT_TENANT {
                            eprintln!("serve: [{name}] training …");
                        }
                        build_lmkg(&graph, opts)
                    }
                    Err(e) => fail(&format!(
                        "model store {} is unreadable: {e} (remove the directory to retrain)",
                        store.dir().display()
                    )),
                },
                None => {
                    if name != DEFAULT_TENANT {
                        eprintln!("serve: [{name}] training …");
                    }
                    build_lmkg(&graph, opts)
                }
            };
            // Startup budget enforcement: without traffic yet there is no
            // usage signal, so eviction is purely size-ordered — the
            // adapter refines the choice later with live workload counts.
            let mut startup_evicted = 0;
            if let Some(budget) = opts.memory_budget {
                if base.total_memory_bytes() > budget {
                    let (smaller, dropped) = base.evict_to_budget(budget, &[]);
                    eprintln!(
                        "serve: [{name}] evicted {dropped} model(s) at startup — {} of {} bytes budget used",
                        smaller.total_memory_bytes(),
                        budget
                    );
                    base = Arc::new(smaller);
                    startup_evicted = dropped;
                }
            }
            // Publish the freshly trained (and possibly trimmed) set so the
            // next start cold-starts; a loaded snapshot is already on disk.
            if let (Some(store), false) = (&store, cold_started) {
                match store.publish(&base) {
                    Ok(gen) => {
                        eprintln!(
                            "serve: [{name}] published generation {gen} to {}",
                            store.dir().display()
                        );
                        generation = Some(gen);
                    }
                    Err(e) => eprintln!("serve: [{name}] snapshot publish failed ({e}); serving continues"),
                }
            }
            TenantRuntime {
                name,
                graph,
                base,
                build_cfg,
                store,
                generation,
                cold_started,
                startup_evicted,
            }
        })
        .collect()
}

/// Assembles the multi-tenant service (and, with `--adapt`, the one
/// adapter thread that walks every tenant).
fn build_service(runtimes: &[TenantRuntime], opts: &Options) -> (EstimationService, Option<Adapter>) {
    let mut builder = ServeBuilder::new().batch(opts.batch.clone());
    let mut monitors: Vec<SharedMonitor> = Vec::new();
    for rt in runtimes {
        let mut spec = TenantSpec::new(
            rt.name.clone(),
            Arc::clone(&rt.graph),
            Arc::clone(&rt.base) as lmkg_serve::SharedEstimator,
        );
        if let Some(store) = &rt.store {
            spec = spec.model_dir(store.dir());
        }
        if let Some(budget) = opts.memory_budget {
            spec = spec.memory_budget(budget);
        }
        if opts.adapt {
            let monitor: SharedMonitor = Arc::new(Mutex::new(WorkloadMonitor::new(
                opts.adapter.window,
                &rt.build_cfg.cells(),
            )));
            monitors.push(Arc::clone(&monitor));
            spec = spec.observed(monitor);
        }
        builder = builder.tenant(spec);
    }
    let svc = builder
        .build()
        .unwrap_or_else(|e| fail(&format!("invalid tenant set: {e}")));
    // Surface the startup lifecycle in the per-tenant stats: the store
    // generation backing the served set (`STATS … gen=`) plus a load/save
    // event matching how it got there.
    for rt in runtimes {
        if rt.startup_evicted > 0 {
            let stats = svc.tenant_serve_stats(&rt.name).expect("tenant just built");
            stats.note_evicted(rt.startup_evicted);
        }
        if let Some(gen) = rt.generation {
            let stats = svc.tenant_serve_stats(&rt.name).expect("tenant just built");
            stats.note_generation(gen);
            if rt.cold_started {
                stats.event(
                    Level::Info,
                    "load",
                    format!(
                        "cold-started [{}] from snapshot generation {gen} ({} model(s), {} bytes) — no training",
                        rt.name,
                        rt.base.model_count(),
                        rt.base.total_memory_bytes()
                    ),
                );
            } else {
                stats.event(
                    Level::Info,
                    "save",
                    format!("published [{}] as snapshot generation {gen} after training", rt.name),
                );
            }
        }
    }
    if !opts.adapt {
        return (svc, None);
    }
    let specs: Vec<TenantAdapterSpec> = runtimes
        .iter()
        .zip(monitors)
        .map(|(rt, monitor)| TenantAdapterSpec {
            name: rt.name.clone(),
            graph: Arc::clone(&rt.graph),
            base: Arc::clone(&rt.base),
            build_cfg: rt.build_cfg.clone(),
            handle: svc.tenant_model(&rt.name).expect("tenant just built"),
            monitor,
            stats: svc.tenant_serve_stats(&rt.name).expect("tenant just built"),
            store: rt.store.clone(),
            memory_budget: opts.memory_budget,
        })
        .collect();
    let adapter = Adapter::start_multi(specs, opts.adapter.clone());
    eprintln!(
        "serve: adaptation on for {} tenant(s) (interval {:?}, window {}, tv>{}, uncovered>{}, max {} models)",
        runtimes.len(),
        opts.adapter.interval,
        opts.adapter.window,
        opts.adapter.tv_threshold,
        opts.adapter.uncovered_threshold,
        opts.adapter.max_models
    );
    (svc, Some(adapter))
}

/// SIGINT/SIGTERM handling for the TCP mode: the handler only flips an
/// atomic; a watcher thread forwards it to the accept loop's shutdown flag.
static SIGNALLED: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_signum: i32) {
    SIGNALLED.store(true, Ordering::SeqCst);
}

#[cfg(unix)]
fn install_signal_handlers(flag: &ShutdownFlag) {
    // `std` offers no signal API; registering the handler straight against
    // libc (which std already links) keeps the container dependency-free.
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> isize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    // SAFETY: `signal` is the libc function std itself links; the handler
    // is `extern "C"`, never unwinds, and only performs an async-signal-
    // safe atomic store into `SIGNALLED` — no allocation, locking, or
    // Rust runtime use inside the handler.
    unsafe {
        signal(SIGINT, on_signal);
        signal(SIGTERM, on_signal);
    }
    let flag = flag.clone();
    std::thread::Builder::new()
        .name("lmkg-serve-signal-watcher".into())
        .spawn(move || loop {
            if SIGNALLED.load(Ordering::SeqCst) {
                eprintln!("serve: signal received; draining sessions and shutting down …");
                flag.trigger();
                return;
            }
            std::thread::sleep(Duration::from_millis(50));
        })
        .expect("spawn signal watcher");
}

#[cfg(not(unix))]
fn install_signal_handlers(_flag: &ShutdownFlag) {}

/// The `--metrics-every N` watcher: renders the full METRICS exposition to
/// stderr every `every_s` seconds. Detached on purpose — it scrapes shared
/// atomics only and dies with the process.
fn start_metrics_dump(svc: &EstimationService, every_s: u64) {
    if every_s == 0 {
        return;
    }
    let stats = svc.serve_stats();
    std::thread::Builder::new()
        .name("lmkg-serve-metrics-dump".into())
        .spawn(move || loop {
            std::thread::sleep(Duration::from_secs(every_s));
            eprintln!("{}# EOF", lmkg_serve::render_metrics(&stats));
        })
        .expect("spawn metrics dump thread");
}

fn main() {
    let opts = parse_options();

    match opts.mode.as_str() {
        "sample" => {
            // v1 output (no tenant tokens) without --tenant specs, so
            // existing capture files and the serve-smoke CI stay valid;
            // with specs, each tenant's lines address its namespace.
            let tenants = tenant_graphs(&opts);
            let v2 = !opts.tenants.is_empty();
            for (name, graph) in &tenants {
                let queries = sample_workload(graph, &opts, opts.count);
                for (i, q) in queries.iter().enumerate() {
                    if v2 {
                        println!("EST {name} q{i} {}", sparql::format_query(q, graph));
                    } else {
                        println!("EST q{i} {}", sparql::format_query(q, graph));
                    }
                }
                if v2 {
                    println!("STATS {name} s_{name}");
                }
            }
            if !v2 {
                println!("STATS s0");
            }
        }
        "pipe" => {
            let runtimes = tenant_runtimes(&opts);
            let (svc, adapter) = build_service(&runtimes, &opts);
            start_metrics_dump(&svc, opts.metrics_every);
            eprintln!(
                "serve: pipe mode ready (tenants [{}]; window {:?}, max_batch {}, queue {}, workers {})",
                svc.tenant_names().join(", "),
                opts.batch.window,
                opts.batch.max_batch,
                opts.batch.queue_depth,
                opts.batch.workers
            );
            let stdin = std::io::stdin();
            serve_stream(&svc, stdin.lock(), std::io::stdout());
            if let Some(adapter) = adapter {
                let published = adapter.stop();
                eprintln!(
                    "serve: adapter joined with {} model(s) published",
                    published.model_count()
                );
            }
            eprintln!("serve: shutdown stats: {}", svc.stats());
        }
        "tcp" => {
            let listener = std::net::TcpListener::bind(&opts.addr)
                .unwrap_or_else(|e| fail(&format!("cannot bind {}: {e}", opts.addr)));
            let runtimes = tenant_runtimes(&opts);
            let (svc, adapter) = build_service(&runtimes, &opts);
            start_metrics_dump(&svc, opts.metrics_every);
            let svc = Arc::new(svc);
            let shutdown = ShutdownFlag::new();
            install_signal_handlers(&shutdown);
            eprintln!(
                "serve: listening on {} (tenants [{}])",
                opts.addr,
                svc.tenant_names().join(", ")
            );
            if let Err(e) = serve_tcp(&svc, listener, None, &shutdown) {
                eprintln!("serve: accept loop failed: {e}");
            }
            // Sessions have drained; now the adapter joins (never mid-swap)
            // and dropping the service flushes the batcher workers.
            if let Some(adapter) = adapter {
                let published = adapter.stop();
                eprintln!(
                    "serve: adapter joined with {} model(s) published",
                    published.model_count()
                );
            }
            eprintln!("serve: shutdown stats: {}", svc.stats());
        }
        "loadgen" => {
            eprintln!(
                "serve: generating {:?} graph at {:?} scale (seed {}) …",
                opts.dataset, opts.scale, opts.seed
            );
            let graph = Arc::new(opts.dataset.generate(opts.scale, opts.seed));
            let t_train = Instant::now();
            let (base, build_cfg) = build_lmkg(&graph, &opts);
            let train_time = t_train.elapsed();
            let queries = match &opts.workload {
                Some(path) => {
                    let text = std::fs::read_to_string(path)
                        .unwrap_or_else(|e| fail(&format!("cannot read workload {path}: {e}")));
                    match loadgen::parse_workload(&text, &graph) {
                        Ok(queries) if !queries.is_empty() => queries,
                        Ok(_) => fail(&format!("workload {path} contains no queries")),
                        Err(e) => fail(&format!("workload {path}, {e}")),
                    }
                }
                None => sample_workload(&graph, &opts, 512),
            };
            let cfg = LoadgenConfig {
                qps: opts.qps,
                requests: opts.requests,
                warmup: 300,
                batch: opts.batch.clone(),
                tenant: opts.loadgen_tenant.clone(),
            };
            eprintln!(
                "serve: load generator — {} requests per run over {} distinct queries (tenant {}) …",
                cfg.requests,
                queries.len(),
                cfg.tenant.as_deref().unwrap_or(DEFAULT_TENANT)
            );
            let report = loadgen::compare(&graph, Arc::clone(&base) as lmkg_serve::SharedEstimator, &queries, &cfg);
            println!("{}", report.per_request);
            println!("{}", report.micro_batched);
            println!("{}", report.saturated_1w);
            println!("{}", report.saturated_multi);
            println!(
                "throughput gain (micro-batched / per-request): {:.2}x at {:.0} offered qps",
                report.throughput_gain, report.offered_qps
            );
            println!(
                "worker scaling ({} workers / 1 worker, concurrent forwards): {:.2}x on {} core(s)",
                report.workers, report.worker_scaling, report.available_parallelism
            );

            eprintln!("serve: observability A/B — the saturated run with instrumentation on vs --no-obs …");
            let obs = loadgen::obs_overhead(
                &graph,
                Arc::clone(&base) as lmkg_serve::SharedEstimator,
                &queries,
                &cfg,
                3,
            );
            println!("{}", obs.instrumented);
            println!("{}", obs.no_obs);
            println!(
                "observability overhead at saturation: {:.2}% ({:.0} qps instrumented vs {:.0} qps without)",
                obs.overhead_pct, obs.instrumented.achieved_qps, obs.no_obs.achieved_qps
            );

            eprintln!("serve: multi-tenant quota isolation — two tenants at equal saturating offered load …");
            let mt = loadgen::multi_tenant(&graph, Arc::clone(&base) as lmkg_serve::SharedEstimator, &queries, &cfg);
            println!("{}", mt.hot);
            println!("{}", mt.cool);
            println!(
                "quota isolation: hot (quota {}) shed {}/{}; cool (quota {}) shed {}; isolated={}",
                mt.hot_quota, mt.hot.shed, mt.hot.sent, mt.cool_quota, mt.cool.shed, mt.isolated
            );

            eprintln!("serve: cold-start — publish the trained set, reload it, replay for bitwise parity …");
            let cold_dir = opts
                .model_dir
                .clone()
                .unwrap_or_else(|| std::env::temp_dir().join(format!("lmkg-coldstart-{}", std::process::id())));
            let cold_start_json =
                match loadgen::cold_start(&graph, Arc::clone(&base), train_time, &queries, &cfg, &cold_dir) {
                    Ok(cs) => {
                        println!(
                            "cold start: train {:.0}ms vs load {:.2}ms ({:.0}x faster); snapshot {} bytes \
                             (generation {}); parity={} over {} request(s)",
                            cs.train_ms,
                            cs.load_ms,
                            cs.speedup,
                            cs.snapshot_bytes,
                            cs.generation,
                            cs.parity,
                            cs.parity_requests
                        );
                        cs.to_json()
                    }
                    Err(e) => {
                        eprintln!("serve: cold-start benchmark failed: {e}");
                        "null".to_string()
                    }
                };

            let mut adaptation_json = "null".to_string();
            if opts.shift_size > 0 {
                if !lmkg::trainable_cell((QueryShape::Star, opts.shift_size)) {
                    fail(&format!(
                        "--shift-size {} is not trainable (star workloads need at least 2 triples)",
                        opts.shift_size
                    ));
                }
                if base.covers(QueryShape::Star, opts.shift_size) {
                    fail(&format!(
                        "--shift-size {} is already covered by the trained sizes {:?}; pick an uncovered size",
                        opts.shift_size, opts.sizes
                    ));
                }
                let shifted = loadgen::shifted_workload(&graph, opts.shift_size, 256, opts.seed ^ 0xad);
                if shifted.is_empty() {
                    fail("shifted workload generation produced no queries");
                }
                let shift_cfg = ShiftConfig {
                    qps: opts.qps,
                    requests: opts.requests.min(2000),
                    batch: opts.batch.clone(),
                    adapter: opts.adapter.clone(),
                    ..ShiftConfig::default()
                };
                eprintln!(
                    "serve: shifted-workload run — workload jumps to star-{} ({} distinct), adapter armed …",
                    opts.shift_size,
                    shifted.len()
                );
                let shift_report = loadgen::shift(&graph, base, &build_cfg, &queries, &shifted, &shift_cfg);
                println!("{}", shift_report.baseline.run);
                println!("{}", shift_report.shifted_pre.run);
                println!("{}", shift_report.shifted_post.run);
                println!(
                    "adaptation: {} retrain(s), {} -> {} models, covered_after={}; \
                     median q-error {:.2} (pre-swap decomposition) -> {:.2} (post-swap model)",
                    shift_report.retrains,
                    shift_report.models_before,
                    shift_report.models_after,
                    shift_report.covered_after,
                    shift_report.shifted_pre.median_q_error,
                    shift_report.shifted_post.median_q_error
                );
                adaptation_json = shift_report.to_json();
            }

            let json = format!(
                "{{\n  \"benchmark\": \"lmkg-serve serving + workload-shift adaptation\",\n  \
                 \"comparison\": {},\n  \"observability\": {},\n  \"multi_tenant\": {},\n  \
                 \"cold_start\": {},\n  \"adaptation\": {}\n}}\n",
                report.to_json().trim_end(),
                obs.to_json(),
                mt.to_json(),
                cold_start_json,
                adaptation_json
            );
            std::fs::write(&opts.json, json).unwrap_or_else(|e| fail(&format!("cannot write {}: {e}", opts.json)));
            eprintln!("serve: wrote {}", opts.json);
        }
        _ => unreachable!("mode validated in parse_options"),
    }
}
