//! Scaled-down graph sampling (Leskovec & Faloutsos, KDD 2006 — the paper's
//! §VII-A citation): "the best performance for a scaled-down sampling is
//! achieved by the random walk (RW) sampling since it is biased towards
//! highly connected nodes. Furthermore, RW preserves the property even when
//! the sample size gets smaller."
//!
//! Implements Random Walk with Fly-back (RWF): walk the undirected view of
//! the graph, returning to the start node with probability `fly_back`;
//! every traversed triple joins the sample; stuck walks restart from a fresh
//! uniformly random node. The sampled triples form a new, independently
//! indexed [`KnowledgeGraph`] whose term strings are preserved.

use lmkg_store::{GraphBuilder, KnowledgeGraph, NodeId, Triple};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`sample_subgraph`].
#[derive(Debug, Clone)]
pub struct RwSampleConfig {
    /// Number of triples to collect (the scaled-down size).
    pub target_triples: usize,
    /// Fly-back probability (Leskovec & Faloutsos use c ≈ 0.15).
    pub fly_back: f64,
    /// Steps without new triples before the walk restarts elsewhere.
    pub patience: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RwSampleConfig {
    fn default() -> Self {
        Self {
            target_triples: 1000,
            fly_back: 0.15,
            patience: 100,
            seed: 0,
        }
    }
}

/// Draws a scaled-down sample of `graph` by random walk with fly-back.
/// Returns a freshly indexed graph over the sampled triples (dictionary
/// strings preserved, ids re-assigned densely).
pub fn sample_subgraph(graph: &KnowledgeGraph, cfg: &RwSampleConfig) -> KnowledgeGraph {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n = graph.num_nodes();
    let mut builder = GraphBuilder::new();
    if n == 0 || cfg.target_triples == 0 {
        return builder.build();
    }

    let mut collected: lmkg_store::fxhash::FxHashSet<Triple> = Default::default();
    let add = |t: Triple, builder: &mut GraphBuilder, collected: &mut lmkg_store::fxhash::FxHashSet<Triple>| {
        if collected.insert(t) {
            builder.add(
                graph.nodes().resolve(t.s.0),
                graph.preds().resolve(t.p.0),
                graph.nodes().resolve(t.o.0),
            );
        }
    };

    let mut start = NodeId(rng.gen_range(0..n as u32));
    let mut current = start;
    let mut stall = 0usize;
    let max_total_steps = cfg.target_triples.saturating_mul(200).max(10_000);
    let mut steps = 0usize;

    while collected.len() < cfg.target_triples.min(graph.num_triples()) && steps < max_total_steps {
        steps += 1;
        if rng.gen_bool(cfg.fly_back) {
            current = start;
        }
        let out = graph.out_degree(current);
        let inc = graph.in_degree(current);
        let total = out + inc;
        if total == 0 || stall > cfg.patience {
            start = NodeId(rng.gen_range(0..n as u32));
            current = start;
            stall = 0;
            continue;
        }
        let before = collected.len();
        let idx = rng.gen_range(0..total);
        let (triple, next) = if idx < out {
            let (p, o) = graph.out_edges(current)[idx];
            (Triple::new(current, p, o), o)
        } else {
            let (p, s) = graph.in_edges(current)[idx - out];
            (Triple::new(s, p, current), s)
        };
        add(triple, &mut builder, &mut collected);
        current = next;
        stall = if collected.len() > before { 0 } else { stall + 1 };
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;
    use crate::scale::Scale;
    use lmkg_store::GraphStats;

    #[test]
    fn sample_has_requested_size() {
        let g = Dataset::LubmLike.generate(Scale::Ci, 1);
        let s = sample_subgraph(
            &g,
            &RwSampleConfig {
                target_triples: 500,
                ..Default::default()
            },
        );
        assert!(
            s.num_triples() >= 450 && s.num_triples() <= 500,
            "got {}",
            s.num_triples()
        );
    }

    #[test]
    fn sampled_triples_exist_in_original() {
        let g = Dataset::SwdfLike.generate(Scale::Ci, 2);
        let s = sample_subgraph(
            &g,
            &RwSampleConfig {
                target_triples: 300,
                ..Default::default()
            },
        );
        for t in s.triples() {
            let subj = s.nodes().resolve(t.s.0);
            let pred = s.preds().resolve(t.p.0);
            let obj = s.nodes().resolve(t.o.0);
            let gs = g.nodes().get(subj).expect("subject exists in original");
            let gp = g.preds().get(pred).expect("predicate exists in original");
            let go = g.nodes().get(obj).expect("object exists in original");
            assert!(g.contains(lmkg_store::NodeId(gs), lmkg_store::PredId(gp), lmkg_store::NodeId(go)));
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let g = Dataset::LubmLike.generate(Scale::Ci, 1);
        let cfg = RwSampleConfig {
            target_triples: 200,
            seed: 9,
            ..Default::default()
        };
        let a = sample_subgraph(&g, &cfg);
        let b = sample_subgraph(&g, &cfg);
        assert_eq!(a.triples(), b.triples());
    }

    #[test]
    fn preserves_scaled_down_degree_shape() {
        // The sample's mean out-degree should be in the same ballpark as the
        // original (the "scaled-down property" of §VII-A).
        let g = Dataset::SwdfLike.generate(Scale::Ci, 1);
        let s = sample_subgraph(
            &g,
            &RwSampleConfig {
                target_triples: g.num_triples() / 4,
                ..Default::default()
            },
        );
        let orig = GraphStats::compute(&g);
        let samp = GraphStats::compute(&s);
        assert!(samp.mean_out_degree > orig.mean_out_degree * 0.3);
        assert!(samp.mean_out_degree < orig.mean_out_degree * 3.0);
    }

    #[test]
    fn requesting_more_than_available_caps_out() {
        let g = Dataset::LubmLike.generate(Scale::Ci, 1);
        let s = sample_subgraph(
            &g,
            &RwSampleConfig {
                target_triples: g.num_triples() * 10,
                ..Default::default()
            },
        );
        assert!(s.num_triples() <= g.num_triples());
        assert!(s.num_triples() > g.num_triples() / 2);
    }

    #[test]
    fn empty_inputs() {
        let empty = GraphBuilder::new().build();
        let s = sample_subgraph(&empty, &RwSampleConfig::default());
        assert_eq!(s.num_triples(), 0);
    }
}
