//! The three benchmark datasets as a uniform facade (paper Table I).

use crate::lubm::{self, LubmConfig};
use crate::scale::Scale;
use crate::swdf::{self, SwdfConfig};
use crate::yago::{self, YagoConfig};
use lmkg_store::KnowledgeGraph;

/// One of the paper's three evaluation datasets (synthetic analogues — see
/// DESIGN.md §1 for the substitution table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// Semantic Web Dog Food analogue: small, densely interconnected,
    /// 171 predicates.
    SwdfLike,
    /// LUBM-20 analogue: regular university schema, 19 predicates.
    LubmLike,
    /// YAGO analogue: enormous distinct-term domain, 91 predicates.
    YagoLike,
}

/// Paper-reported dataset statistics (Table I), for EXPERIMENTS.md parity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PaperStats {
    /// Approximate triple count.
    pub triples: usize,
    /// Approximate entity count.
    pub entities: usize,
    /// Distinct predicates.
    pub predicates: usize,
}

impl Dataset {
    /// All three datasets in paper order.
    pub const ALL: [Dataset; 3] = [Dataset::SwdfLike, Dataset::LubmLike, Dataset::YagoLike];

    /// Dataset display name.
    pub fn name(self) -> &'static str {
        match self {
            Dataset::SwdfLike => "SWDF",
            Dataset::LubmLike => "LUBM20",
            Dataset::YagoLike => "YAGO",
        }
    }

    /// Table I numbers from the paper.
    pub fn paper_stats(self) -> PaperStats {
        match self {
            Dataset::SwdfLike => PaperStats {
                triples: 250_000,
                entities: 76_000,
                predicates: 171,
            },
            Dataset::LubmLike => PaperStats {
                triples: 2_700_000,
                entities: 663_000,
                predicates: 19,
            },
            Dataset::YagoLike => PaperStats {
                triples: 15_000_000,
                entities: 12_000_000,
                predicates: 91,
            },
        }
    }

    /// Generates the dataset at the given scale with a deterministic seed.
    pub fn generate(self, scale: Scale, seed: u64) -> KnowledgeGraph {
        match self {
            Dataset::SwdfLike => swdf::generate(&SwdfConfig::at_scale(scale, seed)),
            Dataset::LubmLike => lubm::generate(&LubmConfig::at_scale(scale, seed)),
            Dataset::YagoLike => yago::generate(&YagoConfig::at_scale(scale, seed)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_stats() {
        assert_eq!(Dataset::SwdfLike.name(), "SWDF");
        assert_eq!(Dataset::LubmLike.paper_stats().predicates, 19);
        assert_eq!(Dataset::YagoLike.paper_stats().predicates, 91);
    }

    #[test]
    fn all_generate_at_ci_scale() {
        for d in Dataset::ALL {
            let g = d.generate(Scale::Ci, 42);
            assert!(g.num_triples() > 100, "{} too small: {}", d.name(), g.num_triples());
            assert_eq!(
                g.num_preds(),
                d.paper_stats().predicates,
                "{} predicate count",
                d.name()
            );
        }
    }

    #[test]
    fn predicate_counts_match_paper_at_default_scale() {
        for d in [Dataset::SwdfLike, Dataset::LubmLike] {
            let g = d.generate(Scale::Ci, 7);
            assert_eq!(g.num_preds(), d.paper_stats().predicates);
        }
    }
}
