//! YAGO-like dataset generator.
//!
//! YAGO (Suchanek et al., 2008) is the paper's stress test: ~15M triples but
//! ~12M entities — i.e. the number of *distinct term values* is of the same
//! order as the number of triples (Table I). That enormous domain is exactly
//! what breaks LMKG-U's autoregressive output layers (§VIII, "Generation of
//! Test Queries") while LMKG-S's binary encoding shrugs it off. The generator
//! reproduces that regime: 91 predicates, a thin layer of popular hub
//! entities, and a vast tail of entities mentioned only once or twice.

use crate::scale::Scale;
use crate::zipf::Zipf;
use lmkg_store::{GraphBuilder, KnowledgeGraph};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of distinct predicates (Table I: YAGO has 91).
pub const NUM_PREDICATES: usize = 91;

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct YagoConfig {
    /// Total number of fact triples to generate (type triples are added on
    /// top, roughly one per subject).
    pub facts: usize,
    /// Number of "popular" hub entities (celebrities, countries, …).
    pub hubs: usize,
    /// Probability that an object is a hub rather than a fresh tail entity.
    pub hub_object_prob: f64,
    /// RNG seed.
    pub seed: u64,
}

impl YagoConfig {
    /// Preset reproducing YAGO's shape (~15M triples / ~12M entities at
    /// `Scale::Paper`; entities ≈ 0.8 × triples at every scale).
    pub fn at_scale(scale: Scale, seed: u64) -> Self {
        Self {
            facts: scale.apply(11_000_000, 600),
            hubs: scale.apply(45_000, 20),
            hub_object_prob: 0.18,
            seed,
        }
    }
}

/// The 91 YAGO-style predicates: a skewed mix of taxonomy, biography and
/// geography relations.
fn predicates() -> Vec<String> {
    let named = [
        "rdf:type",
        "rdfs:label",
        "yago:wasBornIn",
        "yago:diedIn",
        "yago:livesIn",
        "yago:isLocatedIn",
        "yago:isCitizenOf",
        "yago:hasCapital",
        "yago:actedIn",
        "yago:directed",
        "yago:created",
        "yago:wrote",
        "yago:hasWonPrize",
        "yago:playsFor",
        "yago:isMarriedTo",
        "yago:hasChild",
        "yago:graduatedFrom",
        "yago:worksAt",
        "yago:owns",
        "yago:isLeaderOf",
        "yago:participatedIn",
        "yago:happenedIn",
        "yago:isAffiliatedTo",
        "yago:influences",
        "yago:dealsWith",
        "yago:exports",
        "yago:imports",
        "yago:hasOfficialLanguage",
        "yago:hasCurrency",
        "yago:hasNeighbor",
    ];
    let mut all: Vec<String> = named.iter().map(|s| s.to_string()).collect();
    for i in all.len()..NUM_PREDICATES {
        all.push(format!("yago:relation{i}"));
    }
    all
}

/// Generates a YAGO-like knowledge graph.
pub fn generate(config: &YagoConfig) -> KnowledgeGraph {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut b = GraphBuilder::with_capacity(config.facts + config.facts / 4);

    let preds = predicates();
    let pred_zipf = Zipf::new(preds.len(), 1.05);
    let hub_zipf = Zipf::new(config.hubs.max(1), 1.0);
    let classes: Vec<String> = (0..80).map(|i| format!("yago:Class{i}")).collect();
    let class_zipf = Zipf::new(classes.len(), 1.1);

    let hubs: Vec<String> = (0..config.hubs).map(|i| format!("yago:Hub{i}")).collect();
    for h in &hubs {
        b.add(h, "rdf:type", &classes[class_zipf.sample(&mut rng)]);
    }

    // Tail subjects: each emits a small cluster of facts, then is rarely seen
    // again — this drives entities ≈ O(triples).
    let mut tail_counter = 0usize;
    let mut emitted = 0usize;
    while emitted < config.facts {
        let subject = format!("yago:E{tail_counter}");
        tail_counter += 1;
        b.add(&subject, "rdf:type", &classes[class_zipf.sample(&mut rng)]);
        emitted += 1;
        let cluster = rng.gen_range(1..=3usize);
        for _ in 0..cluster {
            let p = &preds[pred_zipf.sample(&mut rng)];
            let object = if rng.gen_bool(config.hub_object_prob) && !hubs.is_empty() {
                hubs[hub_zipf.sample(&mut rng)].clone()
            } else if rng.gen_bool(0.25) {
                format!("\"literal {}\"", tail_counter * 7 + emitted)
            } else {
                // A fresh tail entity referenced exactly once.
                let fresh = format!("yago:E{tail_counter}");
                tail_counter += 1;
                fresh
            };
            b.add(&subject, p, &object);
            emitted += 1;
            if emitted >= config.facts {
                break;
            }
        }
    }

    // Ensure all 91 predicates are present (the Zipf tail may miss some at
    // tiny scales).
    for (i, p) in preds.iter().enumerate() {
        let subj = format!("yago:E{}", i % tail_counter.max(1));
        b.add(&subj, p, &hubs[i % hubs.len().max(1)].clone());
    }

    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmkg_store::GraphStats;

    #[test]
    fn has_91_predicates() {
        let g = generate(&YagoConfig::at_scale(Scale::Ci, 1));
        assert_eq!(g.num_preds(), NUM_PREDICATES);
    }

    #[test]
    fn huge_entity_to_triple_ratio() {
        // YAGO: 12M entities / 15M triples = 0.8 — the LMKG-U killer.
        let g = generate(&YagoConfig::at_scale(Scale::Default, 1));
        let s = GraphStats::compute(&g);
        let ratio = s.entities as f64 / s.triples as f64;
        assert!(
            ratio > 0.55,
            "entity/triple ratio {ratio} too low for a YAGO-like graph"
        );
    }

    #[test]
    fn deterministic_for_seed() {
        let a = generate(&YagoConfig::at_scale(Scale::Ci, 9));
        let b = generate(&YagoConfig::at_scale(Scale::Ci, 9));
        assert_eq!(a.triples(), b.triples());
    }

    #[test]
    fn has_hub_structure() {
        let g = generate(&YagoConfig::at_scale(Scale::Ci, 1));
        let s = GraphStats::compute(&g);
        assert!(
            s.max_in_degree >= 5,
            "expected popular hub objects, max in-degree {}",
            s.max_in_degree
        );
    }

    #[test]
    fn size_tracks_config() {
        let small = generate(&YagoConfig {
            facts: 500,
            hubs: 10,
            hub_object_prob: 0.2,
            seed: 1,
        });
        let large = generate(&YagoConfig {
            facts: 5000,
            hubs: 10,
            hub_object_prob: 0.2,
            seed: 1,
        });
        assert!(large.num_triples() > 4 * small.num_triples());
    }
}
