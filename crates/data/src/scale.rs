//! Dataset scaling.
//!
//! The paper's datasets span 250K–15M triples; the reproduction shrinks them
//! by a configurable factor so the full experiment suite runs on a laptop
//! while preserving the *shape* statistics (skew, predicate counts,
//! entity/triple ratios). See DESIGN.md §1 for the substitution rationale.

/// Target scale of a generated dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Scale {
    /// Tiny graphs for unit/integration tests (hundreds of triples).
    Ci,
    /// Default experiment scale (~1–3% of the paper's sizes); every figure
    /// is regenerated at this scale unless overridden.
    Default,
    /// The paper's stated sizes (SWDF ≈ 250K, LUBM-20 ≈ 2.7M, YAGO ≈ 15M
    /// triples). Slow on laptop hardware; opt-in.
    Paper,
    /// Free multiplier relative to [`Scale::Paper`] (1.0 = paper size).
    Factor(f64),
}

impl Scale {
    /// Multiplier relative to the paper's dataset sizes.
    pub fn factor(self) -> f64 {
        match self {
            Scale::Ci => 0.0005,
            Scale::Default => 0.02,
            Scale::Paper => 1.0,
            Scale::Factor(f) => f,
        }
    }

    /// Scales an absolute paper-size count, with a floor to keep tiny scales
    /// structurally valid.
    pub fn apply(self, paper_count: usize, min: usize) -> usize {
        ((paper_count as f64 * self.factor()).round() as usize).max(min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_is_identity() {
        assert_eq!(Scale::Paper.apply(1000, 1), 1000);
    }

    #[test]
    fn default_scale_shrinks() {
        let scaled = Scale::Default.apply(100_000, 1);
        assert!(scaled < 100_000);
        assert!(scaled >= 1000);
    }

    #[test]
    fn floor_is_respected() {
        assert_eq!(Scale::Ci.apply(100, 5), 5);
    }

    #[test]
    fn custom_factor() {
        assert_eq!(Scale::Factor(0.5).apply(1000, 1), 500);
    }
}
