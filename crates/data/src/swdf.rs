//! SWDF-like dataset generator.
//!
//! The Semantic Web Dog Food corpus (Möller et al., 2007) is conference
//! metadata: papers, people, organizations, and events, with a *high number
//! of interconnections between terms* (paper §VIII, Datasets) and 171
//! distinct predicates whose usage is heavily skewed. Those two properties —
//! dense interlinking through popular entities and a long predicate tail —
//! are what make SWDF the hardest small dataset in Figs. 8–10, and they are
//! what this generator reproduces.

use crate::scale::Scale;
use crate::zipf::Zipf;
use lmkg_store::{GraphBuilder, KnowledgeGraph};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of distinct predicates (Table I: SWDF has 171).
pub const NUM_PREDICATES: usize = 171;

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct SwdfConfig {
    /// Number of people.
    pub people: usize,
    /// Number of conference series.
    pub conferences: usize,
    /// Editions per conference series.
    pub editions_per_conf: (usize, usize),
    /// Papers per edition.
    pub papers_per_edition: (usize, usize),
    /// Zipf exponent of author popularity (higher = more skew).
    pub author_skew: f64,
    /// RNG seed.
    pub seed: u64,
}

impl SwdfConfig {
    /// Preset reproducing SWDF's shape (~250K triples / ~76K entities /
    /// 171 predicates at `Scale::Paper`).
    pub fn at_scale(scale: Scale, seed: u64) -> Self {
        Self {
            people: scale.apply(14_000, 40),
            conferences: scale.apply(120, 2),
            editions_per_conf: (3, 10),
            papers_per_edition: (25, 90),
            author_skew: 0.9,
            seed,
        }
    }
}

fn range(rng: &mut StdRng, (lo, hi): (usize, usize)) -> usize {
    if lo >= hi {
        lo
    } else {
        rng.gen_range(lo..=hi)
    }
}

/// Core, frequently used predicates (the head of the usage distribution).
const CORE_PREDS: [&str; 24] = [
    "rdf:type",
    "swrc:author",
    "foaf:maker",
    "swc:isPartOf",
    "swc:hasTopic",
    "swc:relatedToEvent",
    "foaf:name",
    "rdfs:label",
    "foaf:member",
    "swrc:affiliation",
    "swc:heldBy",
    "swc:hasRole",
    "ical:dtstart",
    "foaf:homepage",
    "foaf:based_near",
    "dc:title",
    "dc:subject",
    "swrc:editor",
    "swc:hasLocation",
    "owl:sameAs",
    "foaf:page",
    "swrc:series",
    "bibo:presents",
    "foaf:knows",
];

/// Generates an SWDF-like knowledge graph.
pub fn generate(config: &SwdfConfig) -> KnowledgeGraph {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut b = GraphBuilder::new();

    let people: Vec<String> = (0..config.people).map(|i| format!("person:{i}")).collect();
    let orgs: Vec<String> = (0..(config.people / 12).max(3)).map(|i| format!("org:{i}")).collect();
    let places: Vec<String> = (0..25).map(|i| format!("place:{i}")).collect();
    let topics: Vec<String> = (0..60.max(config.people / 200)).map(|i| format!("topic:{i}")).collect();

    let author_zipf = Zipf::new(config.people, config.author_skew);
    let topic_zipf = Zipf::new(topics.len(), 1.0);
    let org_zipf = Zipf::new(orgs.len(), 0.8);

    // People: the densely interconnected core of SWDF.
    for (i, p) in people.iter().enumerate() {
        b.add(p, "rdf:type", "foaf:Person");
        b.add(p, "foaf:name", &format!("\"Person {i}\""));
        let org = &orgs[org_zipf.sample(&mut rng)];
        b.add(p, "swrc:affiliation", org);
        if rng.gen_bool(0.4) {
            b.add(p, "foaf:based_near", &places[rng.gen_range(0..places.len())]);
        }
        if rng.gen_bool(0.3) {
            b.add(p, "foaf:homepage", &format!("\"http://people.example/{i}\""));
        }
        // Social edges to popular people (creates hubs).
        for _ in 0..rng.gen_range(0..3usize) {
            let other = &people[author_zipf.sample(&mut rng)];
            if other != p {
                b.add(p, "foaf:knows", other);
            }
        }
        if rng.gen_bool(0.2) {
            b.add(p, "foaf:page", &format!("\"http://dblp.example/{i}\""));
        }
        if rng.gen_bool(0.03) {
            b.add(p, "owl:sameAs", &format!("dbpedia:{i}"));
        }
    }
    for o in &orgs {
        b.add(o, "rdf:type", "foaf:Organization");
        b.add(o, "rdfs:label", &format!("\"{o}\""));
        // Membership closes the person↔org loop from the org side.
        for _ in 0..rng.gen_range(1..4usize) {
            b.add(o, "foaf:member", &people[author_zipf.sample(&mut rng)]);
        }
    }
    for t in &topics {
        b.add(t, "rdf:type", "swc:Topic");
        b.add(t, "rdfs:label", &format!("\"{t}\""));
    }

    let mut paper_counter = 0usize;
    for c in 0..config.conferences {
        let series = format!("conf:{c}");
        b.add(&series, "rdf:type", "swc:ConferenceSeries");
        let editions = range(&mut rng, config.editions_per_conf);
        for e in 0..editions {
            let event = format!("conf:{c}/ed{e}");
            b.add(&event, "rdf:type", "swc:ConferenceEvent");
            b.add(&event, "swrc:series", &series);
            b.add(&event, "swc:hasLocation", &places[rng.gen_range(0..places.len())]);
            b.add(
                &event,
                "ical:dtstart",
                &format!("\"200{}-0{}-01\"", e % 10, (c % 9) + 1),
            );

            // Chairs and roles held by (popular) people.
            for r in 0..rng.gen_range(1..4usize) {
                let role = format!("role:{c}.{e}.{r}");
                b.add(&role, "rdf:type", "swc:Chair");
                b.add(&role, "swc:heldBy", &people[author_zipf.sample(&mut rng)]);
                b.add(&role, "swc:relatedToEvent", &event);
                b.add(&people[author_zipf.sample(&mut rng)], "swc:hasRole", &role);
            }

            let papers = range(&mut rng, config.papers_per_edition);
            for _ in 0..papers {
                let paper = format!("paper:{paper_counter}");
                paper_counter += 1;
                b.add(&paper, "rdf:type", "swrc:InProceedings");
                b.add(&paper, "dc:title", &format!("\"Paper {paper_counter}\""));
                b.add(&paper, "swc:isPartOf", &event);
                b.add(&paper, "swc:hasTopic", &topics[topic_zipf.sample(&mut rng)]);
                if rng.gen_bool(0.5) {
                    b.add(&paper, "dc:subject", &topics[topic_zipf.sample(&mut rng)]);
                }
                let n_authors = rng.gen_range(1..=5usize);
                for a in 0..n_authors {
                    let author = &people[author_zipf.sample(&mut rng)];
                    b.add(&paper, "swrc:author", author);
                    b.add(author, "foaf:maker", &paper);
                    if a == 0 {
                        b.add(author, "bibo:presents", &paper);
                    }
                }
                if rng.gen_bool(0.15) {
                    b.add(&paper, "swrc:editor", &people[author_zipf.sample(&mut rng)]);
                }
            }
        }
    }

    // Long predicate tail: rare predicates over existing entities, Zipf-rare
    // usage so most of the 171 predicates occur only a handful of times.
    let n_rare = NUM_PREDICATES - CORE_PREDS.len();
    let total_rare_triples = (config.people / 2).max(n_rare);
    let rare_zipf = Zipf::new(n_rare, 1.2);
    for _ in 0..total_rare_triples {
        let pred_idx = rare_zipf.sample(&mut rng);
        let pred = format!("rare:p{pred_idx}");
        let subj = &people[rng.gen_range(0..people.len())];
        let obj = if rng.gen_bool(0.5) {
            places[rng.gen_range(0..places.len())].clone()
        } else {
            format!("\"misc {}\"", rng.gen_range(0..50))
        };
        b.add(subj, &pred, &obj);
    }
    // Guarantee every rare predicate exists at least once (Table I parity).
    for i in 0..n_rare {
        let subj = &people[i % people.len()];
        b.add(subj, &format!("rare:p{i}"), &places[i % places.len()]);
    }

    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmkg_store::stats;
    use lmkg_store::GraphStats;

    #[test]
    fn has_171_predicates() {
        let g = generate(&SwdfConfig::at_scale(Scale::Ci, 1));
        assert_eq!(g.num_preds(), NUM_PREDICATES);
    }

    #[test]
    fn deterministic_for_seed() {
        let a = generate(&SwdfConfig::at_scale(Scale::Ci, 5));
        let b = generate(&SwdfConfig::at_scale(Scale::Ci, 5));
        assert_eq!(a.triples(), b.triples());
    }

    #[test]
    fn predicate_usage_is_skewed() {
        let g = generate(&SwdfConfig::at_scale(Scale::Ci, 1));
        let freqs = stats::predicate_frequencies(&g);
        // Head predicate should be used orders of magnitude more than median.
        let head = freqs[0].1;
        let median = freqs[freqs.len() / 2].1;
        assert!(head > 10 * median, "head {head} median {median}");
    }

    #[test]
    fn degree_distribution_has_hubs() {
        let g = generate(&SwdfConfig::at_scale(Scale::Ci, 1));
        let s = GraphStats::compute(&g);
        // Popular people accumulate in-links far above the mean.
        assert!(s.max_in_degree as f64 > 8.0 * (s.triples as f64 / s.entities as f64));
    }

    #[test]
    fn entity_triple_ratio_matches_swdf_shape() {
        // SWDF: 76K entities / 250K triples ≈ 0.3.
        let g = generate(&SwdfConfig::at_scale(Scale::Default, 1));
        let s = GraphStats::compute(&g);
        let ratio = s.entities as f64 / s.triples as f64;
        assert!((0.15..0.5).contains(&ratio), "entity/triple ratio {ratio}");
    }
}
