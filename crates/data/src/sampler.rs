//! Bound-pattern sampling — the training-data creation step of §VII-A.
//!
//! Two strategies per query shape:
//!
//! * **Random walk** (the paper's choice, after Leskovec & Faloutsos): pick a
//!   start node, take `k` uniform out-edge steps (from the same node for
//!   stars, chained for chains). Biased towards highly connected nodes;
//!   cheap; the paper identifies its sample quality as LMKG-U's main
//!   accuracy limiter.
//! * **Uniform** (our ablation, §VII-A discussion): exact uniform sampling
//!   over the tuple space, via `outdeg^k` weights for stars and
//!   walk-count DP tables for chains. This is the distribution an
//!   autoregressive density model actually assumes.

use lmkg_store::counter::walk_counts;
use lmkg_store::{KnowledgeGraph, NodeId, PredId};
use rand::Rng;

/// How bound patterns are drawn from the graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SamplingStrategy {
    /// Random-walk sampling (paper default).
    RandomWalk,
    /// Exact uniform sampling over the tuple space.
    Uniform,
}

/// A bound star pattern: a subject and `k` of its out-edges (with
/// repetition allowed, matching homomorphism semantics).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StarTuple {
    /// Center subject.
    pub s: NodeId,
    /// `(predicate, object)` pairs, in sampling order.
    pub pairs: Vec<(PredId, NodeId)>,
}

impl StarTuple {
    /// Flattens to the autoregressive position order `[s, p1, o1, …]`.
    pub fn to_ids(&self) -> Vec<usize> {
        let mut ids = Vec::with_capacity(1 + 2 * self.pairs.len());
        ids.push(self.s.index());
        for &(p, o) in &self.pairs {
            ids.push(p.index());
            ids.push(o.index());
        }
        ids
    }
}

/// A bound chain pattern: a directed walk of `k` edges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainTuple {
    /// `k + 1` nodes along the walk.
    pub nodes: Vec<NodeId>,
    /// `k` predicates along the walk.
    pub preds: Vec<PredId>,
}

impl ChainTuple {
    /// Flattens to the autoregressive position order `[n1, p1, n2, …]`.
    pub fn to_ids(&self) -> Vec<usize> {
        let mut ids = Vec::with_capacity(self.nodes.len() + self.preds.len());
        ids.push(self.nodes[0].index());
        for i in 0..self.preds.len() {
            ids.push(self.preds[i].index());
            ids.push(self.nodes[i + 1].index());
        }
        ids
    }
}

/// Samples bound star patterns of a fixed size.
pub struct StarSampler<'g> {
    graph: &'g KnowledgeGraph,
    k: usize,
    strategy: SamplingStrategy,
    subjects: Vec<NodeId>,
    /// Cumulative `outdeg^k` weights over `subjects` (uniform strategy).
    cumulative: Vec<f64>,
}

impl<'g> StarSampler<'g> {
    /// Creates a sampler for stars of `k` edges.
    pub fn new(graph: &'g KnowledgeGraph, k: usize, strategy: SamplingStrategy) -> Self {
        assert!(k >= 1, "star size must be at least 1");
        let subjects: Vec<NodeId> = graph.subjects_iter().collect();
        assert!(!subjects.is_empty(), "graph has no subjects to sample from");
        let mut cumulative = Vec::new();
        if strategy == SamplingStrategy::Uniform {
            cumulative.reserve(subjects.len());
            let mut acc = 0.0f64;
            for &s in &subjects {
                acc += (graph.out_degree(s) as f64).powi(k as i32);
                cumulative.push(acc);
            }
        }
        Self {
            graph,
            k,
            strategy,
            subjects,
            cumulative,
        }
    }

    /// The star size `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Draws one bound star pattern.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> StarTuple {
        let s = match self.strategy {
            SamplingStrategy::RandomWalk => self.subjects[rng.gen_range(0..self.subjects.len())],
            SamplingStrategy::Uniform => {
                let total = *self.cumulative.last().expect("non-empty");
                let u = rng.gen::<f64>() * total;
                let idx = self.cumulative.partition_point(|&c| c < u).min(self.subjects.len() - 1);
                self.subjects[idx]
            }
        };
        // Given the center, both strategies take k iid uniform out-edges —
        // for Uniform this completes exact tuple-space uniformity.
        let edges = self.graph.out_edges(s);
        let pairs = (0..self.k).map(|_| edges[rng.gen_range(0..edges.len())]).collect();
        StarTuple { s, pairs }
    }
}

/// Samples bound chain patterns (directed walks) of a fixed length.
pub struct ChainSampler<'g> {
    graph: &'g KnowledgeGraph,
    k: usize,
    strategy: SamplingStrategy,
    subjects: Vec<NodeId>,
    /// `walk_tables[i][v]` = #walks of length `i` from `v` (uniform strategy).
    walk_tables: Vec<Vec<f64>>,
    /// Cumulative start weights `walk_tables[k][v]` over all nodes.
    start_cumulative: Vec<f64>,
}

impl<'g> ChainSampler<'g> {
    /// Creates a sampler for chains of `k` edges.
    pub fn new(graph: &'g KnowledgeGraph, k: usize, strategy: SamplingStrategy) -> Self {
        assert!(k >= 1, "chain length must be at least 1");
        let subjects: Vec<NodeId> = graph.subjects_iter().collect();
        assert!(!subjects.is_empty(), "graph has no subjects to sample from");
        let (walk_tables, start_cumulative) = if strategy == SamplingStrategy::Uniform {
            let tables = walk_counts(graph, k);
            let mut cum = Vec::with_capacity(graph.num_nodes());
            let mut acc = 0.0f64;
            for &walks in &tables[k] {
                acc += walks;
                cum.push(acc);
            }
            assert!(acc > 0.0, "graph has no walks of length {k}");
            (tables, cum)
        } else {
            (Vec::new(), Vec::new())
        };
        Self {
            graph,
            k,
            strategy,
            subjects,
            walk_tables,
            start_cumulative,
        }
    }

    /// The chain length `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Draws one bound chain; random-walk sampling returns `None` when the
    /// walk dead-ends (callers retry), uniform sampling never fails.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> Option<ChainTuple> {
        match self.strategy {
            SamplingStrategy::RandomWalk => self.sample_rw(rng),
            SamplingStrategy::Uniform => Some(self.sample_uniform(rng)),
        }
    }

    fn sample_rw<R: Rng>(&self, rng: &mut R) -> Option<ChainTuple> {
        let start = self.subjects[rng.gen_range(0..self.subjects.len())];
        let mut nodes = Vec::with_capacity(self.k + 1);
        let mut preds = Vec::with_capacity(self.k);
        nodes.push(start);
        let mut current = start;
        for _ in 0..self.k {
            let edges = self.graph.out_edges(current);
            if edges.is_empty() {
                return None;
            }
            let (p, o) = edges[rng.gen_range(0..edges.len())];
            preds.push(p);
            nodes.push(o);
            current = o;
        }
        Some(ChainTuple { nodes, preds })
    }

    fn sample_uniform<R: Rng>(&self, rng: &mut R) -> ChainTuple {
        let total = *self.start_cumulative.last().expect("non-empty");
        let u = rng.gen::<f64>() * total;
        let start_idx = self
            .start_cumulative
            .partition_point(|&c| c < u)
            .min(self.graph.num_nodes() - 1);
        let mut current = NodeId(start_idx as u32);
        let mut nodes = vec![current];
        let mut preds = Vec::with_capacity(self.k);
        for step in 0..self.k {
            let remaining = self.k - step - 1;
            let weights_next = &self.walk_tables[remaining];
            let edges = self.graph.out_edges(current);
            let total: f64 = edges.iter().map(|&(_, o)| weights_next[o.index()]).sum();
            debug_assert!(total > 0.0, "walk table guaranteed a continuation");
            let mut u = rng.gen::<f64>() * total;
            let mut chosen = edges[edges.len() - 1];
            for &(p, o) in edges {
                u -= weights_next[o.index()];
                if u <= 0.0 {
                    chosen = (p, o);
                    break;
                }
            }
            preds.push(chosen.0);
            nodes.push(chosen.1);
            current = chosen.1;
        }
        ChainTuple { nodes, preds }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmkg_store::fxhash::FxHashMap;
    use lmkg_store::GraphBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// a → b, a → c (knows), a → c (likes), b → c, c → d; d is a sink.
    fn graph() -> KnowledgeGraph {
        let mut b = GraphBuilder::new();
        b.add("a", "knows", "b");
        b.add("a", "knows", "c");
        b.add("a", "likes", "c");
        b.add("b", "knows", "c");
        b.add("c", "knows", "d");
        b.build()
    }

    #[test]
    fn star_samples_are_valid_edges() {
        let g = graph();
        let sampler = StarSampler::new(&g, 3, SamplingStrategy::RandomWalk);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..100 {
            let t = sampler.sample(&mut rng);
            assert_eq!(t.pairs.len(), 3);
            for (p, o) in &t.pairs {
                assert!(g.contains(t.s, *p, *o));
            }
        }
    }

    #[test]
    fn uniform_star_matches_outdeg_power_distribution() {
        let g = graph();
        let k = 2;
        let sampler = StarSampler::new(&g, k, SamplingStrategy::Uniform);
        let mut rng = StdRng::seed_from_u64(1);
        let n = 30_000;
        let mut counts: FxHashMap<NodeId, usize> = FxHashMap::default();
        for _ in 0..n {
            *counts.entry(sampler.sample(&mut rng).s).or_insert(0) += 1;
        }
        // outdegs: a=3, b=1, c=1 → weights 9, 1, 1 → P(a) = 9/11.
        let a = NodeId(g.nodes().get("a").unwrap());
        let pa = counts[&a] as f64 / n as f64;
        assert!((pa - 9.0 / 11.0).abs() < 0.02, "P(a) = {pa}");
    }

    #[test]
    fn rw_star_is_biased_to_start_uniformly() {
        let g = graph();
        let sampler = StarSampler::new(&g, 2, SamplingStrategy::RandomWalk);
        let mut rng = StdRng::seed_from_u64(2);
        let n = 30_000;
        let mut counts: FxHashMap<NodeId, usize> = FxHashMap::default();
        for _ in 0..n {
            *counts.entry(sampler.sample(&mut rng).s).or_insert(0) += 1;
        }
        // RW picks the center uniformly among the 3 subjects.
        let a = NodeId(g.nodes().get("a").unwrap());
        let pa = counts[&a] as f64 / n as f64;
        assert!((pa - 1.0 / 3.0).abs() < 0.02, "P(a) = {pa}");
    }

    #[test]
    fn chain_rw_produces_valid_walks_or_none() {
        let g = graph();
        let sampler = ChainSampler::new(&g, 2, SamplingStrategy::RandomWalk);
        let mut rng = StdRng::seed_from_u64(3);
        let mut successes = 0;
        for _ in 0..200 {
            if let Some(t) = sampler.sample(&mut rng) {
                successes += 1;
                assert_eq!(t.nodes.len(), 3);
                assert_eq!(t.preds.len(), 2);
                for i in 0..2 {
                    assert!(g.contains(t.nodes[i], t.preds[i], t.nodes[i + 1]));
                }
            }
        }
        assert!(successes > 50, "too many dead-ends: {successes}/200");
    }

    #[test]
    fn uniform_chain_is_uniform_over_walks() {
        let g = graph();
        let k = 2;
        // Enumerate all walks of length 2 by brute force.
        let mut walks = Vec::new();
        for &t1 in g.triples() {
            for &t2 in g.triples() {
                if t1.o == t2.s {
                    walks.push((t1, t2));
                }
            }
        }
        let sampler = ChainSampler::new(&g, k, SamplingStrategy::Uniform);
        let mut rng = StdRng::seed_from_u64(4);
        let n = 40_000;
        let mut counts: FxHashMap<Vec<u32>, usize> = FxHashMap::default();
        for _ in 0..n {
            let t = sampler.sample(&mut rng).unwrap();
            let key = vec![t.nodes[0].0, t.preds[0].0, t.nodes[1].0, t.preds[1].0, t.nodes[2].0];
            *counts.entry(key).or_insert(0) += 1;
        }
        assert_eq!(counts.len(), walks.len(), "all walks must be reachable");
        let expected = 1.0 / walks.len() as f64;
        for (_, c) in counts {
            let p = c as f64 / n as f64;
            assert!(
                (p - expected).abs() < 0.02,
                "walk probability {p} vs uniform {expected}"
            );
        }
    }

    #[test]
    fn tuple_id_flattening_order() {
        let t = StarTuple {
            s: NodeId(5),
            pairs: vec![(PredId(1), NodeId(2)), (PredId(0), NodeId(3))],
        };
        assert_eq!(t.to_ids(), vec![5, 1, 2, 0, 3]);
        let c = ChainTuple {
            nodes: vec![NodeId(1), NodeId(2), NodeId(3)],
            preds: vec![PredId(9), PredId(8)],
        };
        assert_eq!(c.to_ids(), vec![1, 9, 2, 8, 3]);
    }
}
