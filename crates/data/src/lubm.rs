//! LUBM-like dataset generator.
//!
//! LUBM (Guo, Pan & Heflin, 2005) is itself a synthetic benchmark — a
//! university ontology instantiated per university. We implement the
//! generator directly (scaled down per [`Scale`]) with the same schema
//! structure the paper relies on: exactly 19 predicates, a regular
//! department/professor/student hierarchy, and homogeneous degree
//! distributions (the property that makes LUBM "easy" relative to SWDF in
//! Figs. 8–10).

use crate::scale::Scale;
use lmkg_store::{GraphBuilder, KnowledgeGraph};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The 19 LUBM predicates used by the generator.
pub const PREDICATES: [&str; 19] = [
    "rdf:type",
    "ub:subOrganizationOf",
    "ub:worksFor",
    "ub:headOf",
    "ub:teacherOf",
    "ub:takesCourse",
    "ub:teachingAssistantOf",
    "ub:advisor",
    "ub:memberOf",
    "ub:publicationAuthor",
    "ub:undergraduateDegreeFrom",
    "ub:mastersDegreeFrom",
    "ub:doctoralDegreeFrom",
    "ub:name",
    "ub:emailAddress",
    "ub:telephone",
    "ub:researchInterest",
    "ub:title",
    "ub:orgPublication",
];

/// Tunable generator parameters (see [`LubmConfig::at_scale`] for presets).
#[derive(Debug, Clone)]
pub struct LubmConfig {
    /// Number of universities (LUBM-20 = 20 universities at paper scale).
    pub universities: usize,
    /// Departments per university (uniform range).
    pub depts_per_univ: (usize, usize),
    /// Professors per department.
    pub profs_per_dept: (usize, usize),
    /// Courses taught per professor.
    pub courses_per_prof: (usize, usize),
    /// Graduate students per professor.
    pub grads_per_prof: (usize, usize),
    /// Undergraduate students per professor.
    pub undergrads_per_prof: (usize, usize),
    /// Publications per professor.
    pub pubs_per_prof: (usize, usize),
    /// RNG seed.
    pub seed: u64,
}

impl LubmConfig {
    /// Preset reproducing LUBM-20's shape at the requested scale.
    ///
    /// At `Scale::Paper` this yields ≈ 2.7M triples / ≈ 660K entities, the
    /// LUBM-20 numbers from Table I; smaller scales reduce the university
    /// count and keep per-department structure intact.
    pub fn at_scale(scale: Scale, seed: u64) -> Self {
        Self {
            universities: scale.apply(20 * 14, 1).max(1), // ≈14 "units" per LUBM univ
            depts_per_univ: (12, 18),
            profs_per_dept: (7, 11),
            courses_per_prof: (1, 2),
            grads_per_prof: (2, 3),
            undergrads_per_prof: (6, 9),
            pubs_per_prof: (4, 7),
            seed,
        }
    }
}

fn range(rng: &mut StdRng, (lo, hi): (usize, usize)) -> usize {
    if lo >= hi {
        lo
    } else {
        rng.gen_range(lo..=hi)
    }
}

/// Generates an LUBM-like knowledge graph.
pub fn generate(config: &LubmConfig) -> KnowledgeGraph {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut b = GraphBuilder::new();

    let type_p = "rdf:type";
    let research_areas: Vec<String> = (0..30).map(|i| format!("ub:Research{i}")).collect();

    // University URIs up front so degreeFrom edges can cross universities.
    let universities: Vec<String> = (0..config.universities).map(|u| format!("ub:University{u}")).collect();
    for u in &universities {
        b.add(u, type_p, "ub:University");
    }

    let mut person_counter = 0usize;
    let mut pub_counter = 0usize;

    for (ui, univ) in universities.iter().enumerate() {
        let n_depts = range(&mut rng, config.depts_per_univ);
        for d in 0..n_depts {
            let dept = format!("ub:Dept{d}.U{ui}");
            b.add(&dept, type_p, "ub:Department");
            b.add(&dept, "ub:subOrganizationOf", univ);

            let n_profs = range(&mut rng, config.profs_per_dept);
            let mut courses: Vec<String> = Vec::new();
            let mut professors: Vec<String> = Vec::new();

            for p in 0..n_profs {
                let prof = format!("ub:Prof{person_counter}");
                person_counter += 1;
                let rank = match p % 3 {
                    0 => "ub:FullProfessor",
                    1 => "ub:AssociateProfessor",
                    _ => "ub:AssistantProfessor",
                };
                b.add(&prof, type_p, rank);
                b.add(&prof, "ub:worksFor", &dept);
                if p == 0 {
                    b.add(&prof, "ub:headOf", &dept);
                }
                b.add(&prof, "ub:name", &format!("\"Prof {person_counter}\""));
                b.add(&prof, "ub:emailAddress", &format!("\"prof{person_counter}@u{ui}.edu\""));
                b.add(&prof, "ub:telephone", &format!("\"+1-555-{person_counter:07}\""));
                b.add(
                    &prof,
                    "ub:researchInterest",
                    &research_areas[rng.gen_range(0..research_areas.len())],
                );
                for deg_pred in [
                    "ub:undergraduateDegreeFrom",
                    "ub:mastersDegreeFrom",
                    "ub:doctoralDegreeFrom",
                ] {
                    let from = &universities[rng.gen_range(0..universities.len())];
                    b.add(&prof, deg_pred, from);
                }
                let n_courses = range(&mut rng, config.courses_per_prof);
                for c in 0..n_courses {
                    let course = format!("ub:Course{}.D{d}.U{ui}", courses.len() + c);
                    b.add(&course, type_p, "ub:Course");
                    b.add(&prof, "ub:teacherOf", &course);
                    courses.push(course);
                }
                let n_pubs = range(&mut rng, config.pubs_per_prof);
                for _ in 0..n_pubs {
                    let publication = format!("ub:Publication{pub_counter}");
                    pub_counter += 1;
                    b.add(&publication, type_p, "ub:Publication");
                    b.add(&publication, "ub:publicationAuthor", &prof);
                    b.add(&publication, "ub:title", &format!("\"Title {pub_counter}\""));
                    b.add(&dept, "ub:orgPublication", &publication);
                }
                professors.push(prof);
            }

            if courses.is_empty() {
                continue;
            }

            for prof in professors.iter() {
                let n_grads = range(&mut rng, config.grads_per_prof);
                for _ in 0..n_grads {
                    let student = format!("ub:Grad{person_counter}");
                    person_counter += 1;
                    b.add(&student, type_p, "ub:GraduateStudent");
                    b.add(&student, "ub:memberOf", &dept);
                    b.add(&student, "ub:advisor", prof);
                    b.add(
                        &student,
                        "ub:undergraduateDegreeFrom",
                        &universities[rng.gen_range(0..universities.len())],
                    );
                    b.add(&student, "ub:name", &format!("\"Grad {person_counter}\""));
                    b.add(&student, "ub:emailAddress", &format!("\"g{person_counter}@u{ui}.edu\""));
                    for _ in 0..rng.gen_range(1..=3usize) {
                        b.add(&student, "ub:takesCourse", &courses[rng.gen_range(0..courses.len())]);
                    }
                    if rng.gen_bool(0.25) {
                        b.add(
                            &student,
                            "ub:teachingAssistantOf",
                            &courses[rng.gen_range(0..courses.len())],
                        );
                    }
                }
                let n_under = range(&mut rng, config.undergrads_per_prof);
                for _ in 0..n_under {
                    let student = format!("ub:Under{person_counter}");
                    person_counter += 1;
                    b.add(&student, type_p, "ub:UndergraduateStudent");
                    b.add(&student, "ub:memberOf", &dept);
                    b.add(&student, "ub:name", &format!("\"Under {person_counter}\""));
                    for _ in 0..rng.gen_range(1..=3usize) {
                        b.add(&student, "ub:takesCourse", &courses[rng.gen_range(0..courses.len())]);
                    }
                }
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmkg_store::GraphStats;

    #[test]
    fn uses_exactly_19_predicates() {
        let g = generate(&LubmConfig::at_scale(Scale::Ci, 1));
        assert_eq!(g.num_preds(), 19);
        for p in PREDICATES {
            assert!(g.preds().get(p).is_some(), "missing predicate {p}");
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let a = generate(&LubmConfig::at_scale(Scale::Ci, 7));
        let b = generate(&LubmConfig::at_scale(Scale::Ci, 7));
        assert_eq!(a.num_triples(), b.num_triples());
        assert_eq!(a.triples(), b.triples());
    }

    #[test]
    fn different_seed_differs() {
        let a = generate(&LubmConfig::at_scale(Scale::Ci, 1));
        let b = generate(&LubmConfig::at_scale(Scale::Ci, 2));
        assert_ne!(a.triples(), b.triples());
    }

    #[test]
    fn entity_triple_ratio_matches_lubm_shape() {
        // LUBM-20: 663K entities / 2.7M triples ≈ 0.25.
        let g = generate(&LubmConfig::at_scale(Scale::Default, 1));
        let s = GraphStats::compute(&g);
        let ratio = s.entities as f64 / s.triples as f64;
        assert!((0.15..0.45).contains(&ratio), "entity/triple ratio {ratio}");
    }

    #[test]
    fn scale_controls_size() {
        let small = generate(&LubmConfig::at_scale(Scale::Ci, 1));
        let bigger = generate(&LubmConfig::at_scale(Scale::Factor(0.02), 1));
        assert!(bigger.num_triples() > small.num_triples());
    }

    #[test]
    fn structural_sanity() {
        let g = generate(&LubmConfig::at_scale(Scale::Ci, 3));
        // Every department has a head professor who works for it.
        let head_of = lmkg_store::PredId(g.preds().get("ub:headOf").unwrap());
        let works_for = lmkg_store::PredId(g.preds().get("ub:worksFor").unwrap());
        let mut heads = 0;
        for &(s, o) in g.pred_pairs(head_of).iter() {
            assert!(g.contains(s, works_for, o), "head must work for their department");
            heads += 1;
        }
        assert!(heads > 0);
    }
}
