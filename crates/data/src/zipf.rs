//! A seeded Zipf sampler.
//!
//! `rand_distr` is not on the offline crate list, so we precompute the
//! cumulative mass of `P(i) ∝ 1/(i+1)^s` and sample by binary search. Knowledge
//! graphs are Zipf-shaped in almost every marginal (paper Fig. 4 shows the
//! induced skew in query cardinalities), so all three generators lean on this.

use rand::Rng;

/// Zipf distribution over `0..n` with exponent `s`.
#[derive(Debug, Clone)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Builds the distribution table; `O(n)`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs a non-empty support");
        assert!(s >= 0.0, "Zipf exponent must be non-negative");
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(s);
            cumulative.push(acc);
        }
        Self { cumulative }
    }

    /// Support size.
    pub fn n(&self) -> usize {
        self.cumulative.len()
    }

    /// Samples a rank in `0..n` (0 is the most popular).
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let total = *self.cumulative.last().expect("non-empty");
        let u = rng.gen::<f64>() * total;
        self.cumulative.partition_point(|&c| c < u).min(self.n() - 1)
    }

    /// Probability of rank `i`.
    pub fn pmf(&self, i: usize) -> f64 {
        let total = *self.cumulative.last().expect("non-empty");
        let prev = if i == 0 { 0.0 } else { self.cumulative[i - 1] };
        (self.cumulative[i] - prev) / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(100, 1.1);
        let sum: f64 = (0..100).map(|i| z.pmf(i)).sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rank_zero_is_most_popular() {
        let z = Zipf::new(50, 1.0);
        assert!(z.pmf(0) > z.pmf(1));
        assert!(z.pmf(1) > z.pmf(10));
    }

    #[test]
    fn exponent_zero_is_uniform() {
        let z = Zipf::new(10, 0.0);
        for i in 0..10 {
            assert!((z.pmf(i) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn empirical_frequencies_match_pmf() {
        let z = Zipf::new(20, 1.0);
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 20];
        let n = 50_000;
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for i in [0usize, 1, 5, 19] {
            let emp = counts[i] as f64 / n as f64;
            let exp = z.pmf(i);
            assert!((emp - exp).abs() < 0.01, "rank {i}: emp {emp} vs pmf {exp}");
        }
    }

    #[test]
    fn samples_stay_in_range() {
        let z = Zipf::new(3, 2.0);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 3);
        }
    }
}
