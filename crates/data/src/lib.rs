//! # lmkg-data
//!
//! Dataset and workload substrate for the LMKG reproduction:
//!
//! * seeded generators for the paper's three evaluation datasets (SWDF-like,
//!   LUBM-like, YAGO-like) preserving their Table-I shape statistics at a
//!   configurable [`Scale`](scale::Scale);
//! * bound-pattern samplers — the paper's random-walk sampling plus exact
//!   uniform tuple-space sampling as an ablation (§VII-A);
//! * query-workload generation with exact cardinality labels and the
//!   log-base-5 result-size bucketing of §VIII.
//!
//! ```
//! use lmkg_data::{Dataset, Scale};
//! use lmkg_data::workload::{self, WorkloadConfig};
//! use lmkg_store::QueryShape;
//!
//! let graph = Dataset::LubmLike.generate(Scale::Ci, 42);
//! let cfg = WorkloadConfig::test_default(QueryShape::Star, 2, 1);
//! let queries = workload::generate(&graph, &cfg);
//! assert!(queries.iter().all(|q| q.cardinality >= 1));
//! ```

// No unsafe anywhere in this crate — enforced so the lmkg-xtask L1 lint
// and the sanitizer jobs only ever have the nn kernels and the serve
// signal shim to reason about.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dataset;
pub mod graph_sample;
pub mod lubm;
pub mod sampler;
pub mod scale;
pub mod swdf;
pub mod workload;
pub mod yago;
pub mod zipf;

pub use dataset::Dataset;
pub use graph_sample::{sample_subgraph, RwSampleConfig};
pub use sampler::{ChainSampler, ChainTuple, SamplingStrategy, StarSampler, StarTuple};
pub use scale::Scale;
pub use workload::{LabeledQuery, WorkloadConfig};
pub use zipf::Zipf;
