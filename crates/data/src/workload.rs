//! Query-workload generation: masking bound patterns into queries, exact
//! labeling, log-base-5 result-size bucketing, and balanced selection
//! (paper §VIII, "Generation of Test Queries").

use crate::sampler::{ChainSampler, ChainTuple, SamplingStrategy, StarSampler, StarTuple};
use lmkg_store::counter;
use lmkg_store::fxhash::FxHashSet;
use lmkg_store::{KnowledgeGraph, NodeTerm, PredTerm, Query, QueryShape, TriplePattern, VarId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A query with its exact cardinality (the supervised label).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabeledQuery {
    /// The query pattern.
    pub query: Query,
    /// Exact result size under homomorphism semantics.
    pub cardinality: u64,
}

/// Workload generation parameters.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Star or Chain (the two shapes LMKG supports, §V).
    pub shape: QueryShape,
    /// Query size = number of triple patterns (paper uses 2, 3, 5, 8).
    pub size: usize,
    /// Number of labeled queries to produce.
    pub count: usize,
    /// Probability that an object position stays bound.
    pub object_bound_prob: f64,
    /// Probability that a chain endpoint stays bound.
    pub endpoint_bound_prob: f64,
    /// Keep all predicates bound (required when comparing against the
    /// G-CARE competitors, which cannot answer unbound predicates).
    pub predicates_bound: bool,
    /// Bound-pattern sampling strategy.
    pub strategy: SamplingStrategy,
    /// RNG seed.
    pub seed: u64,
}

impl WorkloadConfig {
    /// The paper's test-workload settings for a shape/size pair.
    pub fn test_default(shape: QueryShape, size: usize, seed: u64) -> Self {
        Self {
            shape,
            size,
            count: 600,
            object_bound_prob: 0.5,
            endpoint_bound_prob: 0.5,
            predicates_bound: true,
            strategy: SamplingStrategy::RandomWalk,
            seed,
        }
    }

    /// Training-workload settings (larger, allows some unbound predicates —
    /// LMKG-S "training data consists of graph patterns … can include
    /// unbound variables", §IV).
    pub fn train_default(shape: QueryShape, size: usize, count: usize, seed: u64) -> Self {
        Self {
            shape,
            size,
            count,
            object_bound_prob: 0.5,
            endpoint_bound_prob: 0.5,
            predicates_bound: true,
            strategy: SamplingStrategy::RandomWalk,
            seed,
        }
    }
}

/// Builds a star query from a bound tuple, masking positions to variables.
/// The center subject is always a variable (the defining join variable).
pub fn mask_star(tuple: &StarTuple, rng: &mut StdRng, cfg: &WorkloadConfig) -> Query {
    let center = NodeTerm::Var(VarId(0));
    let mut next_var = 1u16;
    let triples = tuple
        .pairs
        .iter()
        .map(|&(p, o)| {
            let pred = if cfg.predicates_bound || rng.gen_bool(0.8) {
                PredTerm::Bound(p)
            } else {
                let v = PredTerm::Var(VarId(next_var));
                next_var += 1;
                v
            };
            let obj = if rng.gen_bool(cfg.object_bound_prob) {
                NodeTerm::Bound(o)
            } else {
                let v = NodeTerm::Var(VarId(next_var));
                next_var += 1;
                v
            };
            TriplePattern::new(center, pred, obj)
        })
        .collect();
    Query::new(triples)
}

/// Builds a chain query from a bound walk. Interior nodes are always join
/// variables; endpoints are bound with `endpoint_bound_prob`.
pub fn mask_chain(tuple: &ChainTuple, rng: &mut StdRng, cfg: &WorkloadConfig) -> Query {
    let k = tuple.preds.len();
    let mut next_var = 0u16;
    let fresh = |next_var: &mut u16| {
        let v = VarId(*next_var);
        *next_var += 1;
        v
    };

    // Node terms along the walk: endpoints may be bound, interior nodes are
    // variables (otherwise the pattern degenerates into independent triples).
    let mut node_terms = Vec::with_capacity(k + 1);
    for (i, &n) in tuple.nodes.iter().enumerate() {
        let is_endpoint = i == 0 || i == k;
        let term = if is_endpoint && rng.gen_bool(cfg.endpoint_bound_prob) {
            NodeTerm::Bound(n)
        } else {
            NodeTerm::Var(fresh(&mut next_var))
        };
        node_terms.push(term);
    }
    // Guarantee at least one unbound variable.
    if node_terms.iter().all(|t| t.is_bound()) {
        node_terms[0] = NodeTerm::Var(fresh(&mut next_var));
    }

    let triples = (0..k)
        .map(|i| {
            let pred = if cfg.predicates_bound || rng.gen_bool(0.8) {
                PredTerm::Bound(tuple.preds[i])
            } else {
                PredTerm::Var(fresh(&mut next_var))
            };
            TriplePattern::new(node_terms[i], pred, node_terms[i + 1])
        })
        .collect();
    Query::new(triples)
}

/// Generates a deduplicated, exactly labeled workload.
///
/// Over-samples bound patterns, masks them into queries, drops duplicates,
/// and labels each with the exact cardinality from the counting oracle.
/// Returns fewer than `count` queries only if the graph cannot produce
/// enough distinct patterns.
pub fn generate(graph: &KnowledgeGraph, cfg: &WorkloadConfig) -> Vec<LabeledQuery> {
    assert!(
        matches!(cfg.shape, QueryShape::Star | QueryShape::Chain),
        "workloads are star- or chain-shaped"
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut seen: FxHashSet<Query> = FxHashSet::default();
    let mut out = Vec::with_capacity(cfg.count);
    let max_attempts = cfg.count.saturating_mul(30).max(1000);

    match cfg.shape {
        QueryShape::Star => {
            let sampler = StarSampler::new(graph, cfg.size, cfg.strategy);
            for _ in 0..max_attempts {
                if out.len() >= cfg.count {
                    break;
                }
                let tuple = sampler.sample(&mut rng);
                let query = mask_star(&tuple, &mut rng, cfg);
                if seen.insert(query.clone()) {
                    let cardinality = counter::cardinality(graph, &query);
                    debug_assert!(cardinality >= 1, "masked pattern must match its source");
                    out.push(LabeledQuery { query, cardinality });
                }
            }
        }
        QueryShape::Chain => {
            let sampler = ChainSampler::new(graph, cfg.size, cfg.strategy);
            for _ in 0..max_attempts {
                if out.len() >= cfg.count {
                    break;
                }
                let Some(tuple) = sampler.sample(&mut rng) else {
                    continue;
                };
                let query = mask_chain(&tuple, &mut rng, cfg);
                if seen.insert(query.clone()) {
                    let cardinality = counter::cardinality(graph, &query);
                    debug_assert!(cardinality >= 1, "masked pattern must match its source");
                    out.push(LabeledQuery { query, cardinality });
                }
            }
        }
        _ => unreachable!(),
    }
    out
}

/// Buckets queries by result size into log-base-5 buckets
/// (`[5^0, 5^1), [5^1, 5^2), …` — paper Table I / Fig. 9). Bucket `i` of the
/// returned vector corresponds to exponent `i`; trailing buckets may be
/// empty.
pub fn bucket_by_result_size(queries: &[LabeledQuery], base: u64) -> Vec<Vec<LabeledQuery>> {
    let mut buckets: Vec<Vec<LabeledQuery>> = Vec::new();
    for q in queries {
        let mut b = 0usize;
        let mut v = q.cardinality;
        while v >= base {
            v /= base;
            b += 1;
        }
        if buckets.len() <= b {
            buckets.resize_with(b + 1, Vec::new);
        }
        buckets[b].push(q.clone());
    }
    buckets
}

/// Selects up to `total` queries spread as evenly as possible across result-
/// size buckets ("we try to select the same number of queries from each
/// bucket", §VIII). Under-full buckets contribute what they have.
pub fn balanced_select(queries: &[LabeledQuery], total: usize, base: u64, seed: u64) -> Vec<LabeledQuery> {
    let mut buckets = bucket_by_result_size(queries, base);
    buckets.retain(|b| !b.is_empty());
    if buckets.is_empty() {
        return Vec::new();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    for b in &mut buckets {
        // Fisher–Yates so selection within a bucket is unbiased.
        for i in (1..b.len()).rev() {
            b.swap(i, rng.gen_range(0..=i));
        }
    }
    let mut out = Vec::with_capacity(total);
    let mut cursor = vec![0usize; buckets.len()];
    while out.len() < total {
        let mut progressed = false;
        for (i, b) in buckets.iter().enumerate() {
            if out.len() >= total {
                break;
            }
            if cursor[i] < b.len() {
                out.push(b[cursor[i]].clone());
                cursor[i] += 1;
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lubm::{generate as lubm, LubmConfig};
    use crate::scale::Scale;
    use lmkg_store::matcher;

    fn graph() -> KnowledgeGraph {
        lubm(&LubmConfig::at_scale(Scale::Ci, 1))
    }

    #[test]
    fn star_workload_shape_and_labels() {
        let g = graph();
        let cfg = WorkloadConfig::test_default(QueryShape::Star, 2, 7);
        let w = generate(&g, &cfg);
        assert!(w.len() >= 100, "only {} queries generated", w.len());
        for lq in w.iter().take(30) {
            assert_eq!(lq.query.shape(), QueryShape::Star);
            assert_eq!(lq.query.size(), 2);
            assert!(lq.cardinality >= 1);
            assert_eq!(lq.cardinality, matcher::count(&g, &lq.query));
        }
    }

    #[test]
    fn chain_workload_shape_and_labels() {
        let g = graph();
        let cfg = WorkloadConfig::test_default(QueryShape::Chain, 3, 7);
        let w = generate(&g, &cfg);
        assert!(w.len() >= 50, "only {} queries generated", w.len());
        for lq in w.iter().take(20) {
            assert_eq!(lq.query.shape(), QueryShape::Chain);
            assert_eq!(lq.query.size(), 3);
            assert!(lq.cardinality >= 1);
            assert_eq!(lq.cardinality, matcher::count(&g, &lq.query));
        }
    }

    #[test]
    fn workload_has_no_duplicates() {
        let g = graph();
        let cfg = WorkloadConfig::test_default(QueryShape::Star, 2, 3);
        let w = generate(&g, &cfg);
        let set: FxHashSet<&Query> = w.iter().map(|lq| &lq.query).collect();
        assert_eq!(set.len(), w.len());
    }

    #[test]
    fn all_queries_have_an_unbound_variable() {
        let g = graph();
        for shape in [QueryShape::Star, QueryShape::Chain] {
            let mut cfg = WorkloadConfig::test_default(shape, 2, 11);
            cfg.endpoint_bound_prob = 1.0; // stress the guarantee
            cfg.object_bound_prob = 1.0;
            let w = generate(&g, &cfg);
            for lq in &w {
                assert!(lq.query.has_unbound(), "query without variables: {:?}", lq.query);
            }
        }
    }

    #[test]
    fn deterministic_generation() {
        let g = graph();
        let cfg = WorkloadConfig::test_default(QueryShape::Star, 2, 5);
        assert_eq!(generate(&g, &cfg), generate(&g, &cfg));
    }

    #[test]
    fn bucketing_respects_log5_bounds() {
        let queries: Vec<LabeledQuery> = [1u64, 4, 5, 24, 25, 125, 3000]
            .iter()
            .map(|&c| LabeledQuery {
                query: Query::new(vec![TriplePattern::new(
                    NodeTerm::Var(VarId(0)),
                    PredTerm::Bound(lmkg_store::PredId(0)),
                    NodeTerm::Bound(lmkg_store::NodeId(c as u32 % 3)),
                )]),
                cardinality: c,
            })
            .collect();
        let buckets = bucket_by_result_size(&queries, 5);
        assert_eq!(buckets[0].len(), 2); // 1, 4
        assert_eq!(buckets[1].len(), 2); // 5, 24
        assert_eq!(buckets[2].len(), 1); // 25
        assert_eq!(buckets[3].len(), 1); // 125
        assert_eq!(buckets[4].len(), 1); // 3000
    }

    #[test]
    fn balanced_select_draws_across_buckets() {
        let mut queries = Vec::new();
        for c in [1u64, 2, 3, 4, 6, 7, 8, 30, 31, 200] {
            queries.push(LabeledQuery {
                query: Query::new(vec![TriplePattern::new(
                    NodeTerm::Var(VarId(0)),
                    PredTerm::Bound(lmkg_store::PredId((c % 7) as u32)),
                    NodeTerm::Bound(lmkg_store::NodeId(c as u32)),
                )]),
                cardinality: c,
            });
        }
        let sel = balanced_select(&queries, 4, 5, 1);
        assert_eq!(sel.len(), 4);
        let buckets = bucket_by_result_size(&sel, 5);
        // One from each populated bucket before any second draws.
        assert!(buckets.iter().filter(|b| !b.is_empty()).count() >= 3);
    }

    #[test]
    fn balanced_select_handles_small_pools() {
        let queries: Vec<LabeledQuery> = (0..3)
            .map(|i| LabeledQuery {
                query: Query::new(vec![TriplePattern::new(
                    NodeTerm::Var(VarId(0)),
                    PredTerm::Bound(lmkg_store::PredId(i)),
                    NodeTerm::Var(VarId(1)),
                )]),
                cardinality: 1 + i as u64,
            })
            .collect();
        assert_eq!(balanced_select(&queries, 100, 5, 0).len(), 3);
        assert!(balanced_select(&[], 10, 5, 0).is_empty());
    }

    #[test]
    fn workload_cardinalities_are_skewed() {
        // Fig. 4: the vast majority of queries have small cardinality.
        let g = graph();
        let cfg = WorkloadConfig::test_default(QueryShape::Star, 2, 13);
        let w = generate(&g, &cfg);
        let buckets = bucket_by_result_size(&w, 5);
        let small: usize = buckets.iter().take(2).map(|b| b.len()).sum();
        assert!(small * 2 > w.len(), "expected skew towards small cardinalities");
    }
}
