//! Cross-crate parity suite for the batched estimation path: for every
//! estimator with a batched override — and for representative baselines on
//! the default loop — `estimate_batch` must return **bitwise-identical**
//! results to looping `estimate` over the same slice.

use lmkg::framework::{Grouping, Lmkg, LmkgConfig, ModelType};
use lmkg::supervised::{LmkgS, LmkgSConfig, QueryEncoder};
use lmkg::unsupervised::{LmkgU, LmkgUConfig};
use lmkg::CardinalityEstimator;
use lmkg_baselines::{CharacteristicSets, SumRdf, SumRdfConfig};
use lmkg_data::SamplingStrategy;
use lmkg_encoder::SgEncoder;
use lmkg_integration_tests::{small_lubm, test_queries};
use lmkg_store::{KnowledgeGraph, Query, QueryShape};

/// A mixed workload: covered star-2 / chain-2 queries plus an oversized
/// star that exercises rejection/decomposition paths.
fn mixed_workload(graph: &KnowledgeGraph) -> Vec<Query> {
    let mut queries: Vec<Query> = Vec::new();
    queries.extend(
        test_queries(graph, QueryShape::Star, 2, 25)
            .into_iter()
            .map(|lq| lq.query),
    );
    queries.extend(
        test_queries(graph, QueryShape::Chain, 2, 25)
            .into_iter()
            .map(|lq| lq.query),
    );
    queries.extend(
        test_queries(graph, QueryShape::Star, 4, 5)
            .into_iter()
            .map(|lq| lq.query),
    );
    queries
}

/// Asserts bitwise equality between the batched path and the looped path.
///
/// The looped reference runs *first*, which also proves estimation does not
/// depend on hidden call-order state (the derived-RNG contract of LMKG-U).
fn assert_parity(est: &dyn CardinalityEstimator, queries: &[Query]) {
    let looped: Vec<f64> = queries.iter().map(|q| est.estimate(q)).collect();
    let batched = est.estimate_batch(queries);
    assert_eq!(batched.len(), queries.len());
    for (i, (b, l)) in batched.iter().zip(&looped).enumerate() {
        assert!(
            b.to_bits() == l.to_bits(),
            "{}: query {i} diverged (batched {b}, looped {l})",
            est.name()
        );
    }
}

#[test]
fn lmkg_s_batch_parity() {
    let g = small_lubm();
    let enc = QueryEncoder::Sg(SgEncoder::capacity_for_size(g.num_nodes(), g.num_preds(), 2));
    let mut model = LmkgS::new(
        enc,
        LmkgSConfig {
            hidden: vec![64],
            epochs: 15,
            dropout: 0.0,
            ..Default::default()
        },
    );
    let train = test_queries(&g, QueryShape::Star, 2, 200);
    model.train(&train);
    assert_parity(&model, &mixed_workload(&g));
}

#[test]
fn lmkg_u_batch_parity() {
    let g = small_lubm();
    let mut model = LmkgU::new(
        &g,
        QueryShape::Star,
        2,
        LmkgUConfig {
            hidden: 32,
            blocks: 1,
            embed_dim: 8,
            epochs: 2,
            train_samples: 1500,
            particles: 64,
            strategy: SamplingStrategy::Uniform,
            ..Default::default()
        },
    )
    .expect("domain fits");
    model.train(&g);
    assert_parity(&model, &mixed_workload(&g));
}

#[test]
fn lmkg_framework_batch_parity() {
    let g = small_lubm();
    let mut cfg = LmkgConfig {
        model_type: ModelType::Supervised,
        grouping: Grouping::BySize,
        shapes: vec![QueryShape::Star, QueryShape::Chain],
        sizes: vec![2],
        queries_per_size: 200,
        s_config: LmkgSConfig {
            hidden: vec![48],
            epochs: 10,
            dropout: 0.0,
            ..Default::default()
        },
        u_config: LmkgUConfig::default(),
        workload_seed: 5,
    };
    let lmkg = Lmkg::build(&g, &cfg);
    assert_parity(&lmkg, &mixed_workload(&g));

    // And the unsupervised framework configuration.
    cfg.model_type = ModelType::Unsupervised;
    cfg.u_config = LmkgUConfig {
        hidden: 24,
        blocks: 1,
        embed_dim: 8,
        epochs: 1,
        train_samples: 800,
        particles: 32,
        ..Default::default()
    };
    let lmkg_u = Lmkg::build(&g, &cfg);
    assert_parity(&lmkg_u, &mixed_workload(&g));
}

#[test]
fn cset_baseline_batch_parity() {
    let g = small_lubm();
    let cset = CharacteristicSets::build(&g);
    assert_parity(&cset, &mixed_workload(&g));
}

#[test]
fn sumrdf_baseline_batch_parity() {
    let g = small_lubm();
    let sumrdf = SumRdf::build(&g, SumRdfConfig::default());
    assert_parity(&sumrdf, &mixed_workload(&g));
}
