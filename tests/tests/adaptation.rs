//! End-to-end workload-shift adaptation (paper §IV, Model choice): serve a
//! workload the model set does not cover, let the adapter detect the drift,
//! train the missing model, and swap it in under live traffic — then prove
//! the loop closed *exactly*:
//!
//! * `covers()` turns true for the dominant uncovered cell;
//! * served post-swap estimates are **bitwise-equal** to a directly-built
//!   estimator containing that model (`Lmkg::extend` run outside the
//!   server) — training is deterministic, so the adapter's model and the
//!   direct one are the same weights;
//! * zero replies are dropped, and every reply during the transition is one
//!   of the two legal snapshots (old model's decomposition fallback or new
//!   model's direct estimate) — never garbage from a torn swap.

use lmkg::framework::{Grouping, Lmkg, LmkgConfig, ModelType};
use lmkg::supervised::LmkgSConfig;
use lmkg::{CardinalityEstimator, WorkloadMonitor};
use lmkg_integration_tests::{small_lubm, test_queries};
use lmkg_serve::{Adapter, AdapterConfig, BatchConfig, Reply, ServeBuilder, SharedMonitor, TenantSpec, DEFAULT_TENANT};
use lmkg_store::{sparql, Query, QueryShape};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

fn base_config() -> LmkgConfig {
    LmkgConfig {
        model_type: ModelType::Supervised,
        grouping: Grouping::BySize,
        shapes: vec![QueryShape::Star, QueryShape::Chain],
        sizes: vec![2], // deliberately narrow: star-4 is uncovered
        queries_per_size: 200,
        s_config: LmkgSConfig {
            hidden: vec![64],
            epochs: 10,
            ..Default::default()
        },
        u_config: Default::default(),
        workload_seed: 3,
    }
}

#[test]
fn adapter_closes_the_workload_shift_loop_bitwise() {
    let graph = Arc::new(small_lubm());
    let cfg = base_config();
    let base = Arc::new(Lmkg::build(&graph, &cfg));
    let shift_cell = (QueryShape::Star, 4);
    assert!(!base.covers(shift_cell.0, shift_cell.1), "star-4 must start uncovered");

    // The shifted workload nobody trained for.
    let queries: Vec<Query> = test_queries(&graph, QueryShape::Star, 4, 12)
        .into_iter()
        .map(|lq| lq.query)
        .collect();
    assert!(queries.len() >= 6, "workload too small: {}", queries.len());
    let lines: Vec<String> = queries.iter().map(|q| sparql::format_query(q, &graph)).collect();

    // The reference: a *directly built* estimator containing the star-4
    // model, via the same extension path the adapter uses. Pre-swap traffic
    // must match `base` (decomposition fallback), post-swap traffic must
    // match `expected` — bitwise, through the whole serving stack.
    let expected = base.extend(&graph, &[shift_cell], &cfg);
    assert!(expected.covers(shift_cell.0, shift_cell.1));
    let pre_expected: Vec<u64> = base.estimate_batch(&queries).iter().map(|e| e.to_bits()).collect();
    let post_expected: Vec<u64> = expected.estimate_batch(&queries).iter().map(|e| e.to_bits()).collect();
    assert_ne!(
        pre_expected, post_expected,
        "decomposition and direct-model estimates must be distinguishable for this assertion to bite"
    );

    let monitor: SharedMonitor = Arc::new(Mutex::new(WorkloadMonitor::new(64, &cfg.cells())));
    let svc = ServeBuilder::new()
        .batch(BatchConfig {
            window: Duration::from_millis(1),
            max_batch: 8,
            queue_depth: 8192,
            workers: 2,
            obs: true,
        })
        .tenant(
            TenantSpec::new(
                DEFAULT_TENANT,
                Arc::clone(&graph),
                Arc::clone(&base) as lmkg_serve::SharedEstimator,
            )
            .observed(Arc::clone(&monitor)),
        )
        .build()
        .unwrap();
    let adapter = Adapter::start(
        Arc::clone(&graph),
        Arc::clone(&base),
        cfg.clone(),
        svc.model(),
        monitor,
        svc.serve_stats(),
        AdapterConfig {
            interval: Duration::from_millis(50),
            window: 64,
            min_observed: 16,
            tv_threshold: 0.3,
            uncovered_threshold: 0.2,
            max_models: 8,
            max_new_per_cycle: 2,
        },
    );

    // Live traffic: waves of the shifted workload until the adapter has
    // retrained and swapped, then one more wave that must land entirely on
    // the new model.
    let (tx, rx) = mpsc::channel::<Reply>();
    let mut sent = 0usize;
    let wave = |sent: &mut usize| {
        for line in &lines {
            svc.handle_line(&format!("EST g{} {line}", *sent), &tx);
            *sent += 1;
        }
    };
    let deadline = Instant::now() + Duration::from_secs(600);
    loop {
        wave(&mut sent);
        if svc.stats().retrains >= 1 {
            break;
        }
        assert!(Instant::now() < deadline, "adapter never fired; stats: {}", svc.stats());
        std::thread::sleep(Duration::from_millis(100));
    }
    // The swap is published before `retrains` ticks, so every batch formed
    // from here on resolves the extended model.
    let post_swap_start = sent;
    wave(&mut sent);

    // Collect exactly one reply per request — zero dropped, zero shed.
    let mut replies: Vec<Option<u64>> = vec![None; sent];
    for _ in 0..sent {
        match rx
            .recv_timeout(Duration::from_secs(60))
            .expect("no reply may be dropped")
        {
            Reply::Estimate { id, estimate, .. } => {
                let j: usize = id.strip_prefix('g').unwrap().parse().unwrap();
                assert!(
                    replies[j].replace(estimate.to_bits()).is_none(),
                    "duplicate reply for g{j}"
                );
            }
            other => panic!("unexpected reply during adaptation: {other:?}"),
        }
    }
    let stats = svc.stats();
    assert_eq!(stats.shed, 0, "nothing may shed at this depth: {stats}");
    assert!(stats.retrains >= 1 && stats.models_added >= 1, "stats: {stats}");
    // `drift_uncovered` may already be back to 0 (the tick after the swap
    // sees the cell covered), but the mix shift persists in `drift_tv`.
    assert!(stats.drift_tv > 0.3, "the drift that fired must be recorded: {stats}");

    // Every reply is one of the two legal snapshots, never a mix-up.
    for (j, bits) in replies.iter().enumerate() {
        let bits = bits.expect("every request answered");
        let i = j % queries.len();
        assert!(
            bits == pre_expected[i] || bits == post_expected[i],
            "request g{j} (query {i}): estimate {} is neither the pre-swap nor the post-swap value",
            f64::from_bits(bits)
        );
    }
    // The final wave is entirely post-swap: bitwise the directly-built
    // extended estimator.
    for (j, bits) in replies.iter().enumerate().skip(post_swap_start) {
        let i = j % queries.len();
        assert_eq!(
            bits.unwrap(),
            post_expected[i],
            "post-swap request g{j} (query {i}) must be served by the new model, bitwise"
        );
    }

    // The adapter's published framework covers the cell and grew by exactly
    // the star-4 model.
    let published = adapter.stop();
    assert!(
        published.covers(shift_cell.0, shift_cell.1),
        "covers() must flip for the shifted cell"
    );
    assert_eq!(published.model_count(), base.model_count() + 1);
    // And it answers the shifted workload bitwise like the direct build.
    assert_eq!(
        published
            .estimate_batch(&queries)
            .iter()
            .map(|e| e.to_bits())
            .collect::<Vec<_>>(),
        post_expected,
        "published and directly-built extended estimators must agree bitwise"
    );
}
