//! Cross-crate property tests: encoders against real generated graphs and
//! workloads, and unbiasedness-style checks on the sampling estimators.

use lmkg_baselines::{WanderJoin, WanderJoinConfig};
use lmkg_data::workload::{self, WorkloadConfig};
use lmkg_data::{Dataset, Scale};
use lmkg_encoder::{EncodingKind, PatternBoundEncoder, SgEncoder, TermCodec};
use lmkg_store::{counter, QueryShape};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every generated workload query must be encodable by both encoders and
    /// reproducible (same bytes both times).
    #[test]
    fn workload_queries_are_encodable(seed in 0u64..500, star in any::<bool>()) {
        let g = Dataset::LubmLike.generate(Scale::Ci, 1);
        let shape = if star { QueryShape::Star } else { QueryShape::Chain };
        let mut cfg = WorkloadConfig::test_default(shape, 2, seed);
        cfg.count = 20;
        let queries = workload::generate(&g, &cfg);
        prop_assume!(!queries.is_empty());

        let sg = SgEncoder::capacity_for_size(g.num_nodes(), g.num_preds(), 2);
        let codec = TermCodec::new(EncodingKind::Binary, g.num_nodes(), g.num_preds());
        let pb = PatternBoundEncoder::new(codec, shape, 2);
        for lq in &queries {
            let a = sg.encode_vec(&lq.query).expect("SG encodes workload queries");
            let b = sg.encode_vec(&lq.query).unwrap();
            prop_assert_eq!(a, b);
            pb.encode_vec(&lq.query).expect("pattern-bound encodes workload queries");
        }
    }

    /// Workload labels must agree with the independent generic matcher.
    #[test]
    fn workload_labels_are_exact(seed in 0u64..200) {
        let g = Dataset::LubmLike.generate(Scale::Ci, 2);
        let mut cfg = WorkloadConfig::test_default(QueryShape::Star, 2, seed);
        cfg.count = 10;
        for lq in workload::generate(&g, &cfg) {
            prop_assert_eq!(lq.cardinality, lmkg_store::matcher::count(&g, &lq.query));
        }
    }

    /// WanderJoin's mean over many walks lands within a factor 3 of the
    /// truth on simple 2-chains (unbiasedness, loosely checked).
    #[test]
    fn wander_join_mean_is_near_truth(seed in 0u64..50) {
        let g = Dataset::LubmLike.generate(Scale::Ci, 3);
        let mut cfg = WorkloadConfig::test_default(QueryShape::Chain, 2, seed);
        cfg.count = 3;
        let queries = workload::generate(&g, &cfg);
        prop_assume!(!queries.is_empty());
        let wj = WanderJoin::new(&g, WanderJoinConfig { runs: 30, walks_per_run: 200, seed });
        for lq in &queries {
            prop_assume!(lq.cardinality >= 5); // tiny counts are all variance
            let est = wj.estimate_query(&lq.query);
            prop_assume!(est > 0.0); // zero-hit workloads are valid but uninformative
            let q = (est / lq.cardinality as f64).max(lq.cardinality as f64 / est);
            prop_assert!(q < 3.0, "q-error {} (est {est}, true {})", q, lq.cardinality);
        }
    }

    /// Tuple-space totals computed by the counter must match the cardinality
    /// of the corresponding all-variable query on every generated dataset.
    #[test]
    fn tuple_totals_consistency(k in 1usize..4) {
        let g = Dataset::SwdfLike.generate(Scale::Ci, 4);
        let star = counter::star_tuple_total(&g, k);
        let chain = counter::chain_tuple_total(&g, k);
        prop_assert!(star >= g.num_triples() as f64 || k > 1);
        prop_assert!(chain <= star, "chains are constrained walks; star {star} chain {chain}");
    }
}
