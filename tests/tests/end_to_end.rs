//! End-to-end pipelines across crates: dataset generation → workload
//! labeling → model training → estimation → metric aggregation.

use lmkg::framework::{Grouping, Lmkg, LmkgConfig, ModelType};
use lmkg::supervised::{LmkgS, LmkgSConfig, QueryEncoder};
use lmkg::unsupervised::{LmkgU, LmkgUConfig};
use lmkg::GraphSummary;
use lmkg_data::{Dataset, SamplingStrategy, Scale};
use lmkg_encoder::SgEncoder;
use lmkg_integration_tests::{evaluate, small_lubm, small_swdf, test_queries};
use lmkg_store::QueryShape;

fn quick_s() -> LmkgSConfig {
    LmkgSConfig {
        hidden: vec![96],
        epochs: 100,
        dropout: 0.0,
        ..Default::default()
    }
}

fn quick_u() -> LmkgUConfig {
    LmkgUConfig {
        hidden: 48,
        blocks: 1,
        embed_dim: 12,
        epochs: 10,
        train_samples: 4000,
        particles: 200,
        strategy: SamplingStrategy::Uniform,
        ..Default::default()
    }
}

#[test]
fn supervised_pipeline_beats_independence_baseline() {
    let g = small_lubm();
    let cfg = LmkgConfig {
        model_type: ModelType::Supervised,
        grouping: Grouping::BySize,
        shapes: vec![QueryShape::Star, QueryShape::Chain],
        sizes: vec![2],
        queries_per_size: 600,
        s_config: quick_s(),
        u_config: quick_u(),
        workload_seed: 5,
    };
    let lmkg = Lmkg::build(&g, &cfg);
    let queries = test_queries(&g, QueryShape::Star, 2, 200);

    let lmkg_stats = evaluate(&lmkg, &queries);

    // Independence baseline via the statistics block.
    let summary = GraphSummary::build(&g);
    let indep_pairs: Vec<(f64, u64)> = queries
        .iter()
        .map(|lq| (summary.estimate_query_independent(&lq.query), lq.cardinality))
        .collect();
    let indep_stats = lmkg::QErrorStats::from_pairs(indep_pairs).unwrap();

    assert!(
        lmkg_stats.geometric_mean < indep_stats.geometric_mean,
        "LMKG-S gmean {} should beat independence gmean {}",
        lmkg_stats.geometric_mean,
        indep_stats.geometric_mean
    );
}

#[test]
fn unsupervised_pipeline_on_skewed_data() {
    let g = small_swdf();
    let mut model = LmkgU::new(&g, QueryShape::Star, 2, quick_u()).expect("domain fits");
    model.train(&g);
    let queries = test_queries(&g, QueryShape::Star, 2, 120);
    let mut finite = 0usize;
    let mut pairs = Vec::new();
    for lq in &queries {
        if let Ok(est) = model.estimate_query(&lq.query) {
            assert!(est.is_finite() && est >= 1.0);
            finite += 1;
            pairs.push((est, lq.cardinality));
        }
    }
    assert!(finite > queries.len() / 2, "too many unsupported queries");
    let stats = lmkg::QErrorStats::from_pairs(pairs).unwrap();
    assert!(stats.median < 25.0, "median q-error {}", stats.median);
}

#[test]
fn yago_like_domain_breaks_lmkg_u_but_not_lmkg_s() {
    // The paper's YAGO finding: the autoregressive model cannot scale to a
    // domain where entities ≈ triples, while LMKG-S (binary encodings) can.
    let g = Dataset::YagoLike.generate(Scale::Ci, 1);
    let mut u_cfg = quick_u();
    u_cfg.max_node_domain = g.num_nodes() / 2; // the guard the framework uses
    assert!(LmkgU::new(&g, QueryShape::Star, 2, u_cfg).is_err());

    let train = test_queries(&g, QueryShape::Star, 2, 300);
    let enc = QueryEncoder::Sg(SgEncoder::capacity_for_size(g.num_nodes(), g.num_preds(), 2));
    let mut s = LmkgS::new(enc, quick_s());
    s.train(&train);
    let est = s.predict(&train[0].query).unwrap();
    assert!(est >= 1.0 && est.is_finite());
}

#[test]
fn single_model_answers_both_topologies() {
    let g = small_lubm();
    let cfg = LmkgConfig {
        model_type: ModelType::Supervised,
        grouping: Grouping::Single,
        shapes: vec![QueryShape::Star, QueryShape::Chain],
        sizes: vec![2, 3],
        queries_per_size: 300,
        s_config: quick_s(),
        u_config: quick_u(),
        workload_seed: 9,
    };
    let lmkg = Lmkg::build(&g, &cfg);
    assert_eq!(lmkg.model_count(), 1);
    for shape in [QueryShape::Star, QueryShape::Chain] {
        for size in [2usize, 3] {
            let queries = test_queries(&g, shape, size, 40);
            let stats = evaluate(&lmkg, &queries);
            assert!(stats.median.is_finite(), "{shape} size {size}");
        }
    }
}

#[test]
fn specialized_beats_single_model_in_sample() {
    // Fig. 7's headline: "For almost every case, the specialized model ...
    // produces the best estimates. The single model ... has the lowest
    // estimation accuracy."
    let g = small_lubm();
    let mk = |grouping| LmkgConfig {
        model_type: ModelType::Supervised,
        grouping,
        shapes: vec![QueryShape::Star, QueryShape::Chain],
        sizes: vec![2, 3],
        queries_per_size: 400,
        s_config: quick_s(),
        u_config: quick_u(),
        workload_seed: 13,
    };
    let specialized = Lmkg::build(&g, &mk(Grouping::Specialized));
    let single = Lmkg::build(&g, &mk(Grouping::Single));
    let queries = test_queries(&g, QueryShape::Star, 2, 150);
    let spec_stats = evaluate(&specialized, &queries);
    let single_stats = evaluate(&single, &queries);
    assert!(
        spec_stats.geometric_mean <= single_stats.geometric_mean * 1.5,
        "specialized gmean {} vs single gmean {}",
        spec_stats.geometric_mean,
        single_stats.geometric_mean
    );
}
