//! Cross-crate concurrency-parity suite for the shared-read inference API:
//! N threads holding clones of one `Arc`-shared frozen model, each
//! estimating a slice of the same workload, must together produce
//! **bitwise-identical** results to a single-threaded run over the whole
//! workload — no interior mutability, no hidden call-order state, no
//! workspace cross-talk.
//!
//! The kernel-parity CI job re-runs this suite under `LMKG_FORCE_SCALAR=1`,
//! so the property is enforced under both GEMM kernels.

use lmkg::framework::{Grouping, Lmkg, LmkgConfig, ModelType};
use lmkg::supervised::LmkgSConfig;
use lmkg::unsupervised::{LmkgU, LmkgUConfig};
use lmkg::CardinalityEstimator;
use lmkg_data::SamplingStrategy;
use lmkg_integration_tests::{small_lubm, test_queries};
use lmkg_store::{KnowledgeGraph, Query, QueryShape};
use std::sync::Arc;

const THREADS: usize = 4;

/// Covered star-2/chain-2 queries plus oversized stars that exercise the
/// rejection/decomposition paths.
fn workload(graph: &KnowledgeGraph) -> Vec<Query> {
    let mut queries: Vec<Query> = Vec::new();
    for (shape, size, count) in [
        (QueryShape::Star, 2, 20),
        (QueryShape::Chain, 2, 20),
        (QueryShape::Star, 4, 8),
    ] {
        queries.extend(test_queries(graph, shape, size, count).into_iter().map(|lq| lq.query));
    }
    queries
}

/// Sequential reference first, then `THREADS` threads sharing one `Arc`:
/// each estimates a contiguous slice (per-query and batched), and every
/// result must match the sequential run bit for bit.
fn assert_concurrent_parity<E>(estimator: E, queries: &[Query])
where
    E: CardinalityEstimator + Send + Sync + 'static,
{
    let sequential: Vec<u64> = queries.iter().map(|q| estimator.estimate(q).to_bits()).collect();
    let sequential_batched: Vec<u64> = estimator.estimate_batch(queries).iter().map(|e| e.to_bits()).collect();

    let shared: Arc<E> = Arc::new(estimator);
    let chunk = queries.len().div_ceil(THREADS);
    let threaded: Vec<Vec<(u64, u64)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = queries
            .chunks(chunk)
            .map(|slice| {
                let model = Arc::clone(&shared);
                scope.spawn(move || {
                    let looped: Vec<u64> = slice.iter().map(|q| model.estimate(q).to_bits()).collect();
                    let batched = model.estimate_batch(slice);
                    looped
                        .into_iter()
                        .zip(batched.into_iter().map(|e| e.to_bits()))
                        .collect()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("estimation thread panicked"))
            .collect()
    });

    let mut i = 0usize;
    for part in threaded {
        for (looped, batched) in part {
            assert_eq!(
                looped, sequential[i],
                "query {i}: concurrent per-query estimate diverged from sequential"
            );
            assert_eq!(
                batched, sequential_batched[i],
                "query {i}: concurrent batched estimate diverged from sequential"
            );
            i += 1;
        }
    }
    assert_eq!(i, queries.len(), "every query estimated exactly once");
}

#[test]
fn lmkg_framework_concurrent_parity() {
    let g = small_lubm();
    let cfg = LmkgConfig {
        model_type: ModelType::Supervised,
        grouping: Grouping::BySize,
        shapes: vec![QueryShape::Star, QueryShape::Chain],
        sizes: vec![2],
        queries_per_size: 200,
        s_config: LmkgSConfig {
            hidden: vec![48],
            epochs: 10,
            dropout: 0.0,
            ..Default::default()
        },
        u_config: LmkgUConfig::default(),
        workload_seed: 5,
    };
    let queries = workload(&g);
    assert_concurrent_parity(Lmkg::build(&g, &cfg), &queries);
}

#[test]
fn lmkg_u_concurrent_parity() {
    let g = small_lubm();
    let mut model = LmkgU::new(
        &g,
        QueryShape::Star,
        2,
        LmkgUConfig {
            hidden: 32,
            blocks: 1,
            embed_dim: 8,
            epochs: 2,
            train_samples: 1500,
            particles: 64,
            strategy: SamplingStrategy::Uniform,
            ..Default::default()
        },
    )
    .expect("domain fits");
    model.train(&g);
    let queries = workload(&g);
    assert_concurrent_parity(model, &queries);
}
