//! Contract tests every estimator must satisfy: finite positive estimates,
//! determinism under a fixed seed, distinct names, and sane memory reports.

use lmkg::supervised::{LmkgS, LmkgSConfig, QueryEncoder};
use lmkg::CardinalityEstimator;
use lmkg_baselines::{
    CharacteristicSets, Impr, ImprConfig, Jsub, JsubConfig, Mscn, MscnConfig, SumRdf, SumRdfConfig, WanderJoin,
    WanderJoinConfig,
};
use lmkg_data::workload::{self, WorkloadConfig};
use lmkg_encoder::SgEncoder;
use lmkg_integration_tests::{small_lubm, test_queries};
use lmkg_store::{KnowledgeGraph, QueryShape};

fn trained_lmkg_s(g: &KnowledgeGraph) -> LmkgS {
    let train = workload::generate(g, &WorkloadConfig::train_default(QueryShape::Star, 2, 300, 2));
    let enc = QueryEncoder::Sg(SgEncoder::capacity_for_size(g.num_nodes(), g.num_preds(), 2));
    let mut m = LmkgS::new(
        enc,
        LmkgSConfig {
            hidden: vec![48],
            epochs: 20,
            ..Default::default()
        },
    );
    m.train(&train);
    m
}

fn trained_mscn(g: &KnowledgeGraph, samples: usize) -> Mscn {
    let train = workload::generate(g, &WorkloadConfig::train_default(QueryShape::Star, 2, 300, 2));
    let mut m = Mscn::new(
        g,
        MscnConfig {
            samples,
            hidden: 32,
            epochs: 20,
            ..Default::default()
        },
    );
    m.train(&train);
    m
}

/// Applies `f` to every estimator over the same graph.
fn with_all_estimators(g: &KnowledgeGraph, mut f: impl FnMut(&mut dyn CardinalityEstimator)) {
    f(&mut CharacteristicSets::build(g));
    f(&mut SumRdf::build(g, SumRdfConfig::default()));
    f(&mut WanderJoin::new(
        g,
        WanderJoinConfig {
            runs: 5,
            walks_per_run: 40,
            seed: 3,
        },
    ));
    f(&mut Jsub::new(
        g,
        JsubConfig {
            runs: 5,
            walks_per_run: 40,
            seed: 3,
        },
    ));
    f(&mut Impr::new(
        g,
        ImprConfig {
            runs: 5,
            samples_per_run: 20,
            burn_in: 8,
            seed: 3,
        },
    ));
    f(&mut trained_mscn(g, 0));
    f(&mut trained_lmkg_s(g));
}

#[test]
fn all_estimates_are_finite_and_at_least_one() {
    let g = small_lubm();
    let queries = test_queries(&g, QueryShape::Star, 2, 30);
    with_all_estimators(&g, |est| {
        for lq in &queries {
            let e = est.estimate(&lq.query);
            assert!(e.is_finite(), "{} produced a non-finite estimate", est.name());
            assert!(e >= 1.0, "{} produced {} < 1", est.name(), e);
        }
    });
}

#[test]
fn chain_queries_are_answered_by_everyone() {
    let g = small_lubm();
    let queries = test_queries(&g, QueryShape::Chain, 2, 20);
    assert!(!queries.is_empty());
    with_all_estimators(&g, |est| {
        for lq in &queries {
            let e = est.estimate(&lq.query);
            assert!(e.is_finite() && e >= 1.0, "{} failed on a chain query", est.name());
        }
    });
}

#[test]
fn names_are_unique() {
    let g = small_lubm();
    let mut names = Vec::new();
    with_all_estimators(&g, |est| names.push(est.name().to_string()));
    let mut dedup = names.clone();
    dedup.sort();
    dedup.dedup();
    assert_eq!(dedup.len(), names.len(), "duplicate estimator names: {names:?}");
}

#[test]
fn memory_reports_are_positive() {
    let g = small_lubm();
    with_all_estimators(&g, |est| {
        assert!(est.memory_bytes() > 0, "{} reports zero memory", est.name());
    });
}

#[test]
fn sampling_estimators_are_deterministic_per_seed() {
    let g = small_lubm();
    let queries = test_queries(&g, QueryShape::Star, 2, 10);
    let run = |seed: u64| -> Vec<f64> {
        let wj = WanderJoin::new(
            &g,
            WanderJoinConfig {
                runs: 3,
                walks_per_run: 30,
                seed,
            },
        );
        queries.iter().map(|lq| wj.estimate(&lq.query)).collect()
    };
    assert_eq!(run(7), run(7));
    assert_ne!(run(7), run(8));
}

#[test]
fn summaries_are_smaller_than_the_graph() {
    let g = small_lubm();
    let cset = CharacteristicSets::build(&g);
    let sumrdf = SumRdf::build(&g, SumRdfConfig::default());
    assert!(cset.memory_bytes() < g.heap_bytes());
    assert!(sumrdf.memory_bytes() < g.heap_bytes());
}

#[test]
fn jsub_upper_bounds_wander_join_on_average() {
    // JSUB charges worst-case fan-outs, so across a workload its mean
    // estimate must not be below WanderJoin's.
    let g = small_lubm();
    let queries = test_queries(&g, QueryShape::Chain, 3, 40);
    let wj = WanderJoin::new(
        &g,
        WanderJoinConfig {
            runs: 10,
            walks_per_run: 50,
            seed: 1,
        },
    );
    let jsub = Jsub::new(
        &g,
        JsubConfig {
            runs: 10,
            walks_per_run: 50,
            seed: 1,
        },
    );
    let wj_mean: f64 = queries.iter().map(|lq| wj.estimate(&lq.query)).sum::<f64>() / queries.len() as f64;
    let jsub_mean: f64 = queries.iter().map(|lq| jsub.estimate(&lq.query)).sum::<f64>() / queries.len() as f64;
    assert!(
        jsub_mean >= wj_mean * 0.9,
        "JSUB mean {jsub_mean} unexpectedly far below WJ mean {wj_mean}"
    );
}
