//! The model lifecycle, end to end: versioned snapshots, cold-start
//! serving, and memory-budgeted eviction under live traffic.
//!
//! * cold start is **bitwise** — a replica restarted from a store snapshot
//!   answers the full serving path with exactly the bits the trained
//!   replica produced, and reaches serving far faster than retraining;
//! * eviction converges below the budget, keeps the workload-dominant cell
//!   covered (its estimates never change bits, so no batch was torn while
//!   the smaller set was swapped in), and the evicted set is persisted;
//! * corruption fuzzing: flipping any byte of a store file is a typed
//!   error, truncating a snapshot stream at any point is a typed error —
//!   never a panic, never a silently different model.

use lmkg::framework::{Grouping, Lmkg, LmkgConfig, ModelType};
use lmkg::supervised::LmkgSConfig;
use lmkg::{CardinalityEstimator, QuantMode, WorkloadMonitor};
use lmkg_integration_tests::{small_lubm, test_queries};
use lmkg_modelstore::ModelStore;
use lmkg_serve::{
    loadgen, Adapter, AdapterConfig, BatchConfig, LoadgenConfig, Reply, ServeBuilder, SharedEstimator, SharedMonitor,
    TenantAdapterSpec, TenantSpec, DEFAULT_TENANT,
};
use lmkg_store::{sparql, KnowledgeGraph, Query, QueryShape};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// A unique throwaway store directory per call.
fn temp_store_dir(tag: &str) -> std::path::PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "lmkg-lifecycle-{tag}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ))
}

/// A deliberately small supervised configuration — fast to train, slow
/// enough that loading must beat it by a wide margin.
fn small_config() -> LmkgConfig {
    LmkgConfig {
        model_type: ModelType::Supervised,
        grouping: Grouping::BySize,
        shapes: vec![QueryShape::Star, QueryShape::Chain],
        sizes: vec![2],
        queries_per_size: 150,
        s_config: LmkgSConfig {
            hidden: vec![32],
            epochs: 6,
            ..Default::default()
        },
        u_config: Default::default(),
        workload_seed: 3,
    }
}

/// One tiny trained framework, shared by the fuzzing properties (training
/// per proptest case would dominate the suite).
fn fuzz_model() -> Arc<Lmkg> {
    static MODEL: OnceLock<Arc<Lmkg>> = OnceLock::new();
    Arc::clone(MODEL.get_or_init(|| {
        let graph = small_lubm();
        let cfg = LmkgConfig {
            queries_per_size: 100,
            s_config: LmkgSConfig {
                hidden: vec![16],
                epochs: 2,
                ..Default::default()
            },
            ..small_config()
        };
        Arc::new(Lmkg::build(&graph, &cfg))
    }))
}

fn star2_queries(graph: &KnowledgeGraph, count: usize) -> Vec<Query> {
    test_queries(graph, QueryShape::Star, 2, count)
        .into_iter()
        .map(|lq| lq.query)
        .collect()
}

#[test]
fn cold_start_is_bitwise_and_at_least_ten_times_faster_than_training() {
    let graph = Arc::new(small_lubm());
    let cfg = small_config();
    let t0 = Instant::now();
    let base = Arc::new(Lmkg::build(&graph, &cfg));
    let train_time = t0.elapsed();

    let queries = star2_queries(&graph, 24);
    assert!(queries.len() >= 8, "workload too small: {}", queries.len());
    let dir = temp_store_dir("coldstart");
    let report = loadgen::cold_start(
        &graph,
        Arc::clone(&base),
        train_time,
        &queries,
        &LoadgenConfig::default(),
        &dir,
    )
    .expect("cold-start benchmark runs");

    assert!(report.parity, "restarted replica must answer bitwise identically");
    assert_eq!(report.parity_requests, queries.len());
    assert_eq!(report.generation, 1, "first publish into an empty store");
    assert!(report.snapshot_bytes > 0);
    assert!(
        report.speedup >= 10.0,
        "loading must beat retraining by >= 10x, got {:.1}x (train {:.0}ms, load {:.2}ms)",
        report.speedup,
        report.train_ms,
        report.load_ms
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn quantized_set_cold_starts_bitwise_through_the_store() {
    let graph = Arc::new(small_lubm());
    let base = Lmkg::build(&graph, &small_config()).quantized(QuantMode::Int8);
    let dir = temp_store_dir("quantized");
    let store = ModelStore::open(&dir).expect("store opens");
    let generation = store.publish(&base).expect("publish succeeds");
    let (loaded, loaded_gen) = store.load_latest().expect("reload succeeds");
    assert_eq!(loaded_gen, generation);
    assert_eq!(
        loaded.memory_bytes(),
        base.memory_bytes(),
        "quantized footprint survives"
    );
    for q in star2_queries(&graph, 16) {
        assert_eq!(
            base.estimate(&q).to_bits(),
            loaded.estimate(&q).to_bits(),
            "quantized estimates must survive the store bitwise"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The evict-swap discipline under live traffic: a four-model set serving a
/// star-2-only workload is squeezed under a budget that forces drops. The
/// dominant cell must stay covered, every reply during the transition must
/// be bitwise the base model's answer (survivor routing is unchanged, so a
/// torn batch is the only way to get different bits), the eviction must be
/// exactly the deterministic `evict_to_budget` result, and the smaller set
/// must land in the store as generation 1.
#[test]
fn adapter_evicts_to_budget_and_persists_without_tearing_a_batch() {
    let graph = Arc::new(small_lubm());
    let cfg = LmkgConfig {
        grouping: Grouping::Specialized,
        sizes: vec![2, 3],
        ..small_config()
    };
    let base = Arc::new(Lmkg::build(&graph, &cfg));
    assert!(base.model_count() >= 4, "specialized 2x2 grid expected");
    let budget = base.total_memory_bytes() - 1;
    let usage = [((QueryShape::Star, 2usize), 1u64)];
    let (expected, expected_dropped) = base.evict_to_budget(budget, &usage);
    assert!(expected_dropped >= 1, "the budget must force at least one drop");
    assert!(expected.covers(QueryShape::Star, 2), "the live cell must survive");

    let queries = star2_queries(&graph, 10);
    assert!(queries.len() >= 4);
    let lines: Vec<String> = queries
        .iter()
        .enumerate()
        .map(|(i, q)| format!("EST q{i} {}", sparql::format_query(q, &graph)))
        .collect();
    let expected_bits: Vec<u64> = queries.iter().map(|q| base.estimate(q).to_bits()).collect();

    let monitor: SharedMonitor = Arc::new(Mutex::new(WorkloadMonitor::new(256, &cfg.cells())));
    let svc = ServeBuilder::new()
        .batch(BatchConfig {
            window: Duration::from_micros(200),
            max_batch: 8,
            queue_depth: 1024,
            workers: 2,
            obs: true,
        })
        .tenant(
            TenantSpec::new(DEFAULT_TENANT, Arc::clone(&graph), Arc::clone(&base) as SharedEstimator)
                .observed(Arc::clone(&monitor))
                .memory_budget(budget),
        )
        .build()
        .expect("one tenant builds");

    // Fill the monitor with the star-2 workload *before* the adapter runs,
    // so its first budget pass already knows which cell is live.
    let (tx, rx) = mpsc::channel::<Reply>();
    let check_replies = |round: &str| {
        for line in &lines {
            svc.handle_line(line, &tx);
        }
        for _ in &lines {
            match rx.recv_timeout(Duration::from_secs(20)).expect("reply arrives") {
                Reply::Estimate { id, estimate, .. } => {
                    let i: usize = id.strip_prefix('q').unwrap().parse().unwrap();
                    assert_eq!(
                        estimate.to_bits(),
                        expected_bits[i],
                        "{round}: reply for q{i} must be the base model's bits — a different \
                         value means the evict-swap tore a batch or uncovered the live cell"
                    );
                }
                other => panic!("{round}: unexpected reply {other:?}"),
            }
        }
    };
    check_replies("warmup");

    let dir = temp_store_dir("evict");
    let store = ModelStore::open(&dir).expect("store opens");
    let adapter = Adapter::start_multi(
        vec![TenantAdapterSpec {
            name: DEFAULT_TENANT.into(),
            graph: Arc::clone(&graph),
            base: Arc::clone(&base),
            build_cfg: cfg.clone(),
            handle: svc.model(),
            monitor,
            stats: svc.serve_stats(),
            store: Some(store.clone()),
            memory_budget: Some(budget),
        }],
        AdapterConfig {
            interval: Duration::from_millis(20),
            min_observed: 16,
            ..AdapterConfig::default()
        },
    );

    // Keep traffic flowing while the adapter evicts and swaps; every reply
    // must keep the base bits throughout the transition.
    let deadline = Instant::now() + Duration::from_secs(30);
    while svc.stats().evicted == 0 {
        assert!(Instant::now() < deadline, "adapter never evicted under budget pressure");
        check_replies("during-evict");
        std::thread::sleep(Duration::from_millis(10));
    }
    check_replies("post-evict");

    let published = adapter.stop();
    assert_eq!(
        published.model_count(),
        expected.model_count(),
        "the adapter must publish exactly the deterministic eviction result"
    );
    assert!(
        published.total_memory_bytes() <= budget,
        "published set fits the budget"
    );
    assert!(published.covers(QueryShape::Star, 2), "live cell stays covered");
    for (q, &bits) in queries.iter().zip(&expected_bits) {
        assert_eq!(published.estimate(q).to_bits(), bits, "survivor routing is unchanged");
    }

    let stats = svc.stats();
    assert!(stats.evicted as usize >= expected_dropped);
    assert!(stats.generation >= 1, "the evicted set must have been persisted");
    let (reloaded, generation) = store.load_latest().expect("persisted generation loads");
    assert_eq!(generation, stats.generation);
    assert_eq!(reloaded.model_count(), published.model_count());
    for (q, &bits) in queries.iter().zip(&expected_bits) {
        assert_eq!(reloaded.estimate(q).to_bits(), bits, "restart serves the same bits");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Flipping any single byte of a published store file must surface as a
    /// typed error on load — the CRC (or a header check) catches it; it
    /// never panics and never yields a silently different model.
    #[test]
    fn store_rejects_any_single_byte_corruption(offset in 0usize..1_000_000, flip in 1u8..255) {
        let model = fuzz_model();
        let dir = temp_store_dir("fuzz-corrupt");
        let store = ModelStore::open(&dir).expect("store opens");
        let generation = store.publish(&model).expect("publish succeeds");
        let file = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok().map(|e| e.path()))
            .find(|p| p.extension().is_some_and(|e| e == "lmkg"))
            .expect("snapshot file exists");
        let mut bytes = std::fs::read(&file).unwrap();
        let at = offset % bytes.len();
        bytes[at] ^= flip;
        std::fs::write(&file, &bytes).unwrap();
        let err = store.load_generation(generation).expect_err("corruption must be detected");
        // Any typed error is acceptable; formatting it must not panic.
        let _ = err.to_string();
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Truncating a raw model-set snapshot stream at any point must be a
    /// typed `SnapshotError`, never a panic and never a successful load.
    #[test]
    fn snapshot_rejects_any_truncation(frac in 0.0f64..1.0) {
        static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
        let bytes = BYTES.get_or_init(|| fuzz_model().save_to_vec().expect("serializes"));
        let cut = ((bytes.len() - 1) as f64 * frac) as usize;
        let err = Lmkg::load(&mut &bytes[..cut]).expect_err("truncation must be detected");
        let _ = err.to_string();
    }
}
