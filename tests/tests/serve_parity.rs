//! Cross-crate suite for the serving layer: a full protocol session over a
//! trained LMKG framework must return estimates **bitwise-identical** to
//! calling `estimate_batch` directly — the wire (shortest-round-trip float
//! formatting), the micro-batcher's arbitrary re-partitioning of arrivals
//! into batches, and the reply reordering must all be invisible.

use lmkg::framework::{Grouping, Lmkg, LmkgConfig, ModelType};
use lmkg::supervised::LmkgSConfig;
use lmkg::CardinalityEstimator;
use lmkg_integration_tests::{small_lubm, test_queries};
use lmkg_serve::{serve_stream, BatchConfig, Reply, ServeBuilder, TenantSpec, DEFAULT_TENANT};

use lmkg_store::{sparql, KnowledgeGraph, Query, QueryShape};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

fn quick_lmkg(graph: &KnowledgeGraph) -> Lmkg {
    let cfg = LmkgConfig {
        model_type: ModelType::Supervised,
        grouping: Grouping::BySize,
        shapes: vec![QueryShape::Star, QueryShape::Chain],
        sizes: vec![2, 3],
        queries_per_size: 200,
        s_config: LmkgSConfig {
            hidden: vec![64],
            epochs: 10,
            ..Default::default()
        },
        u_config: Default::default(),
        workload_seed: 3,
    };
    Lmkg::build(graph, &cfg)
}

/// Covered sizes, an uncovered size (batched decomposition), and reply ids
/// dense enough to reassemble the order.
fn served_workload(graph: &KnowledgeGraph) -> Vec<Query> {
    let mut queries: Vec<Query> = Vec::new();
    for (shape, size, count) in [
        (QueryShape::Star, 2, 10),
        (QueryShape::Chain, 3, 10),
        (QueryShape::Star, 3, 10),
        (QueryShape::Star, 5, 5), // no covering model → decomposition path
    ] {
        queries.extend(test_queries(graph, shape, size, count).into_iter().map(|lq| lq.query));
    }
    queries
}

#[test]
fn served_estimates_are_bitwise_identical_to_direct_estimate_batch() {
    let graph = Arc::new(small_lubm());
    let lmkg = quick_lmkg(&graph);
    let queries = served_workload(&graph);
    assert!(queries.len() >= 30, "workload too small: {}", queries.len());

    let direct = lmkg.estimate_batch(&queries);

    // Session input: one EST line per query, ids q0..qN, through the text
    // protocol with a micro-batch configuration that forces the batcher to
    // re-partition the stream into many small forwards.
    let mut input = String::new();
    for (i, q) in queries.iter().enumerate() {
        input.push_str(&format!("EST q{i} {}\n", sparql::format_query(q, &graph)));
    }
    input.push_str("STATS final\nQUIT\n");

    let svc = ServeBuilder::new()
        .batch(BatchConfig {
            window: Duration::from_millis(5),
            max_batch: 7, // deliberately not a divisor of the workload size
            queue_depth: 4096,
            workers: 2,
            obs: true,
        })
        .tenant(TenantSpec::new(DEFAULT_TENANT, Arc::clone(&graph), Arc::new(lmkg)))
        .build()
        .unwrap();
    let out = serve_stream(&svc, input.as_bytes(), Vec::new());
    let transcript = String::from_utf8(out).expect("utf-8 replies");

    let mut served: HashMap<usize, f64> = HashMap::new();
    let mut stats = None;
    for line in transcript.lines() {
        match Reply::parse(line).expect("every reply line parses") {
            Reply::Estimate { id, estimate, micros } => {
                assert!(micros >= 0.0);
                let i: usize = id.strip_prefix('q').unwrap().parse().unwrap();
                assert!(served.insert(i, estimate).is_none(), "duplicate reply for {id}");
            }
            Reply::Stats { id, snapshot } => {
                assert_eq!(id, "final");
                stats = Some(snapshot);
            }
            other => panic!("unexpected reply {other:?}"),
        }
    }
    assert_eq!(served.len(), queries.len(), "one estimate reply per request");
    for (i, direct_est) in direct.iter().enumerate() {
        let served_est = served[&i];
        assert!(
            served_est.to_bits() == direct_est.to_bits(),
            "query {i}: served {served_est} != direct {direct_est}"
        );
    }
    // The micro-batcher actually batched (fewer forwards than requests) and
    // the stats reply reflects the session. The STATS snapshot races with
    // the last in-flight batches only if requests were still queued; QUIT
    // comes after, so by the time the writer drained everything served is
    // complete — but the snapshot itself was taken when the STATS line was
    // handled, so only a lower bound is asserted.
    let stats = stats.expect("STATS reply present");
    assert!(stats.shed == 0, "nothing should shed at depth 4096: {stats:?}");
    assert!(
        stats.batches < stats.served || stats.served < queries.len() as u64,
        "expected coalescing: {stats:?}"
    );
}

#[test]
fn malformed_and_overload_replies_are_structured() {
    let graph = Arc::new(small_lubm());
    let summary = lmkg::GraphSummary::build(&graph);
    let svc = ServeBuilder::new()
        .batch(BatchConfig::default())
        .tenant(TenantSpec::new(DEFAULT_TENANT, Arc::clone(&graph), Arc::new(summary)))
        .build()
        .unwrap();

    let input = "\
EST
EST q1 SELECT nonsense
EST q2 SELECT * WHERE { ?x :no_such_predicate_anywhere ?y . }
BOGUS line here
QUIT
";
    let out = serve_stream(&svc, input.as_bytes(), Vec::new());
    let transcript = String::from_utf8(out).unwrap();
    let lines: Vec<&str> = transcript.lines().collect();
    assert_eq!(lines.len(), 4, "unexpected transcript: {transcript}");
    // Every reply is a parseable ERR with the right id attribution.
    let ids: Vec<String> = lines
        .iter()
        .map(|l| match Reply::parse(l).expect("structured reply") {
            Reply::Error { id, .. } => id,
            other => panic!("expected ERR, got {other:?}"),
        })
        .collect();
    assert_eq!(ids, vec!["-", "q1", "q2", "-"]);
}
