//! Cross-crate suite for the observability surface: a `METRICS` request
//! over each transport (pipe and TCP) must return one framed, parseable
//! exposition carrying the serving counters, the stage-latency histograms,
//! the kernel-dispatch profile, and the structured event ring.

use lmkg::GraphSummary;
use lmkg_integration_tests::small_lubm;
use lmkg_serve::{
    serve_stream, serve_tcp, BatchConfig, EstimationService, Reply, ServeBuilder, ShutdownFlag, TenantSpec,
    DEFAULT_TENANT, REGISTRY, STAGE_NAMES,
};
use lmkg_store::KnowledgeGraph;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;

fn service(graph: Arc<KnowledgeGraph>) -> EstimationService {
    let summary = GraphSummary::build(&graph);
    ServeBuilder::new()
        .batch(BatchConfig::default())
        .tenant(TenantSpec::new(DEFAULT_TENANT, graph, Arc::new(summary)))
        .build()
        .unwrap()
}

/// Extracts the framed METRICS body from a session transcript: the lines
/// after the `METRICS <id> lines=<n>` header, which the framing promises
/// are exactly `n` (including the `# EOF` sentinel) and contiguous — the
/// whole reply is written as one unit, so concurrent estimate replies
/// cannot interleave into the body.
fn extract_metrics_body<'a>(transcript: &'a str, id: &str) -> Vec<&'a str> {
    let mut lines = transcript.lines();
    let header = lines
        .by_ref()
        .find(|l| l.starts_with(&format!("METRICS {id} ")))
        .unwrap_or_else(|| panic!("no METRICS {id} header in transcript:\n{transcript}"));
    match Reply::parse(header).expect("METRICS header parses as a reply") {
        Reply::Metrics { id: got, .. } => assert_eq!(got, id),
        other => panic!("expected a METRICS reply, got {other:?}"),
    }
    let n: usize = header
        .rsplit_once("lines=")
        .and_then(|(_, n)| n.parse().ok())
        .expect("framed line count");
    let body: Vec<&str> = lines.by_ref().take(n).collect();
    assert_eq!(body.len(), n, "body shorter than the framed line count");
    assert_eq!(*body.last().unwrap(), "# EOF", "framing must end at the sentinel");
    body
}

/// The assertions both transports share: every series family the issue
/// demands is present, and every sample line is machine-parseable.
fn assert_full_exposition(body: &[&str]) {
    let text = body.join("\n");
    for stage in STAGE_NAMES {
        assert!(
            text.contains(&format!("lmkg_stage_us_count{{stage=\"{stage}\"}}")),
            "missing stage series {stage:?}:\n{text}"
        );
    }
    for needle in [
        "# TYPE lmkg_requests_served_total counter",
        "lmkg_requests_shed_total",
        "lmkg_batches_total",
        "lmkg_queue_depth",
        "lmkg_sessions_total 1",
        "lmkg_sessions_active 1",
        "lmkg_bytes_read_total",
        "lmkg_request_latency_window_us_count",
        "lmkg_kernel_dispatch_total{path=\"gemv\",kernel=",
        "lmkg_kernel_dispatch_total{path=\"blocked\",kernel=",
        "lmkg_kernel_flops_total",
        "lmkg_workspace_high_water_bytes",
        "lmkg_events_total{kind=\"shed\"}",
        "lmkg_events_total{kind=\"swap\"}",
        "# EVENTS",
    ] {
        assert!(text.contains(needle), "exposition missing {needle:?}:\n{text}");
    }
    for line in body {
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        let (_, value) = line.rsplit_once(' ').expect("sample line has a value");
        assert!(value.parse::<f64>().is_ok(), "unparseable sample value in {line:?}");
    }
}

#[test]
fn metrics_over_pipe_carries_every_family_and_the_parse_error_event() {
    let svc = service(Arc::new(small_lubm()));
    // Two estimates, one malformed line (a counted parse error with a ring
    // event), then the scrape. handle_line is sequential in the reader
    // loop, so the parse error is visible by the time METRICS renders.
    let input = "\
EST q0 SELECT * WHERE { ?x ?p ?y . }
EST q1 SELECT * WHERE { ?x ?p ?y . ?y ?q ?z . }
NOT-A-VERB q2
METRICS m1
QUIT
";
    let out = serve_stream(&svc, input.as_bytes(), Vec::new());
    let transcript = String::from_utf8(out).unwrap();
    let body = extract_metrics_body(&transcript, "m1");
    assert_full_exposition(&body);
    let text = body.join("\n");
    assert!(
        text.contains("lmkg_parse_errors_total 1"),
        "parse error not counted:\n{text}"
    );
    assert!(
        text.contains("lmkg_events_total{kind=\"parse_error\"} 1"),
        "parse error not in the event ring:\n{text}"
    );
    assert!(
        text.lines()
            .any(|l| l.starts_with("# EVENT ") && l.contains("parse_error")),
        "no structured parse_error event line:\n{text}"
    );
}

#[test]
fn metrics_over_tcp_matches_the_pipe_surface() {
    let svc = Arc::new(service(Arc::new(small_lubm())));
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = std::thread::spawn({
        let svc = Arc::clone(&svc);
        move || serve_tcp(&svc, listener, Some(1), &ShutdownFlag::new()).unwrap()
    });

    let mut client = TcpStream::connect(addr).unwrap();
    client
        .write_all(b"EST t0 SELECT * WHERE { ?x ?p ?y . }\nMETRICS tm\nQUIT\n")
        .unwrap();
    let mut transcript = String::new();
    let mut reader = BufReader::new(client.try_clone().unwrap());
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line).unwrap() == 0 {
            break; // server closed after QUIT
        }
        transcript.push_str(&line);
    }
    server.join().unwrap();

    let body = extract_metrics_body(&transcript, "tm");
    assert_full_exposition(&body);
    // The byte counters saw this very session's traffic.
    let text = body.join("\n");
    let bytes_in: f64 = text
        .lines()
        .find(|l| l.starts_with("lmkg_bytes_read_total "))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
        .unwrap();
    assert!(bytes_in > 0.0, "request bytes not accounted:\n{text}");
}

/// The registry ↔ live-surface contract: every series family in a real
/// `METRICS` scrape is declared in `lmkg_serve::REGISTRY` with the right
/// exposition kind, and every registered family shows up in the scrape.
/// (`lmkg-xtask check` L4 enforces the renderer ↔ registry direction
/// statically; this closes the loop against the running code.)
#[test]
fn live_scrape_families_match_the_registry_exactly() {
    let svc = service(Arc::new(small_lubm()));
    // One estimate first so conditional families (stage timings, batch
    // sizes) have samples; the global (un-namespaced) scrape also carries
    // the process-wide kernel-profile block.
    let input = "EST q0 SELECT * WHERE { ?x ?p ?y . }\nMETRICS reg\nQUIT\n";
    let out = serve_stream(&svc, input.as_bytes(), Vec::new());
    let transcript = String::from_utf8(out).unwrap();
    let body = extract_metrics_body(&transcript, "reg");

    // Scraped families: `# TYPE <name> <kind>` for sampled families plus
    // `# HELP <name> …` for help-only info families.
    let mut scraped: std::collections::BTreeMap<&str, Option<&str>> = std::collections::BTreeMap::new();
    for line in &body {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let (name, kind) = (parts.next().unwrap(), parts.next().unwrap());
            scraped.insert(name, Some(kind));
        } else if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split_whitespace().next().unwrap();
            scraped.entry(name).or_insert(None);
        }
    }

    for def in REGISTRY {
        let kind = scraped
            .get(def.name)
            .unwrap_or_else(|| panic!("registered family {} missing from the live scrape", def.name));
        match def.kind.type_keyword() {
            Some(expected) => assert_eq!(*kind, Some(expected), "family {} exposes the wrong kind", def.name),
            // Info families render help-only.
            None => assert_eq!(*kind, None, "info family {} grew samples", def.name),
        }
    }
    for name in scraped.keys() {
        assert!(
            REGISTRY.iter().any(|d| d.name == *name),
            "live scrape carries unregistered family {name} — add it to metrics_registry.rs"
        );
    }
    // Guard the guard: the registry covers the full surface, so an
    // accidentally-emptied scrape can't vacuously pass.
    assert!(scraped.len() >= 26, "suspiciously small scrape: {scraped:?}");
}
