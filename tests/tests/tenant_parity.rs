//! Cross-crate suite for multi-tenant serving: namespaces must be
//! *invisible* to the numbers. Two tenants served concurrently by one
//! process return estimates bitwise-identical to two single-tenant servers
//! run one after the other; a tenant at its admission quota sheds without
//! disturbing its neighbours; v1 lines replay byte-identically through the
//! v2 service; and the adapter retrains one tenant under live traffic on
//! another with zero dropped replies.

use lmkg::framework::{Grouping, Lmkg, LmkgConfig, ModelType};
use lmkg::supervised::LmkgSConfig;
use lmkg::{CardinalityEstimator, GraphSummary, WorkloadMonitor};
use lmkg_integration_tests::{small_lubm, small_swdf, test_queries};
use lmkg_serve::{
    serve_stream, Adapter, AdapterConfig, BatchConfig, EstimationService, Reply, Request, ServeBuilder, SharedMonitor,
    TenantAdapterSpec, TenantSpec, DEFAULT_TENANT,
};
use lmkg_store::{sparql, KnowledgeGraph, Query, QueryShape};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// A deliberately narrow training recipe (star-2 only) so tests that need a
/// real learned framework stay fast and star-3 remains an uncovered cell.
fn narrow_config() -> LmkgConfig {
    LmkgConfig {
        model_type: ModelType::Supervised,
        grouping: Grouping::BySize,
        shapes: vec![QueryShape::Star],
        sizes: vec![2],
        queries_per_size: 200,
        s_config: LmkgSConfig {
            hidden: vec![64],
            epochs: 10,
            ..Default::default()
        },
        u_config: Default::default(),
        workload_seed: 3,
    }
}

/// Covered star-2 queries plus a few uncovered star-3 ones (decomposition
/// path), formatted as protocol SPARQL lines.
fn tenant_workload(graph: &KnowledgeGraph) -> (Vec<Query>, Vec<String>) {
    let mut queries: Vec<Query> = Vec::new();
    for (shape, size, count) in [(QueryShape::Star, 2, 20), (QueryShape::Star, 3, 5)] {
        queries.extend(test_queries(graph, shape, size, count).into_iter().map(|lq| lq.query));
    }
    let lines = queries.iter().map(|q| sparql::format_query(q, graph)).collect();
    (queries, lines)
}

/// Replays `lines` as v2 `EST <tenant> …` requests against `svc` from this
/// thread and returns the id→bits map once every reply arrived.
fn replay_tenant(svc: &EstimationService, tenant: &str, lines: &[String]) -> HashMap<usize, u64> {
    let (tx, rx) = mpsc::channel::<Reply>();
    for (i, line) in lines.iter().enumerate() {
        svc.handle_line(&format!("EST {tenant} q{i} {line}"), &tx);
    }
    let mut got = HashMap::new();
    for _ in 0..lines.len() {
        match rx.recv_timeout(Duration::from_secs(60)).expect("no reply dropped") {
            Reply::Estimate { id, estimate, .. } => {
                let i: usize = id.strip_prefix('q').unwrap().parse().unwrap();
                assert!(got.insert(i, estimate.to_bits()).is_none(), "duplicate reply {id}");
            }
            other => panic!("unexpected reply for tenant {tenant}: {other:?}"),
        }
    }
    got
}

/// Two tenants served concurrently out of one process must be bitwise-equal
/// to two single-tenant servers run sequentially: the shared process, the
/// interleaved batching, and the namespace routing change nothing about the
/// numbers.
#[test]
fn two_tenants_concurrent_equal_two_single_tenant_servers_sequential() {
    let cfg = narrow_config();
    let graph_a = Arc::new(small_lubm());
    let graph_b = Arc::new(small_swdf());
    let model_a = Arc::new(Lmkg::build(&graph_a, &cfg));
    let model_b = Arc::new(Lmkg::build(&graph_b, &cfg));
    let (_, lines_a) = tenant_workload(&graph_a);
    let (_, lines_b) = tenant_workload(&graph_b);
    let batch = BatchConfig {
        window: Duration::from_millis(2),
        max_batch: 5,
        queue_depth: 4096,
        workers: 2,
        obs: true,
    };

    // Reference: one single-tenant server per graph, run sequentially.
    let mut reference: Vec<HashMap<usize, u64>> = Vec::new();
    for (graph, model, lines) in [(&graph_a, &model_a, &lines_a), (&graph_b, &model_b, &lines_b)] {
        let svc = ServeBuilder::new()
            .batch(batch.clone())
            .tenant(TenantSpec::new(
                DEFAULT_TENANT,
                Arc::clone(graph),
                Arc::clone(model) as lmkg_serve::SharedEstimator,
            ))
            .build()
            .unwrap();
        reference.push(replay_tenant(&svc, DEFAULT_TENANT, lines));
    }

    // One multi-tenant server, both tenants driven concurrently.
    let svc = ServeBuilder::new()
        .batch(batch)
        .tenant(TenantSpec::new(
            "lubm",
            Arc::clone(&graph_a),
            Arc::clone(&model_a) as lmkg_serve::SharedEstimator,
        ))
        .tenant(TenantSpec::new(
            "swdf",
            Arc::clone(&graph_b),
            Arc::clone(&model_b) as lmkg_serve::SharedEstimator,
        ))
        .build()
        .unwrap();
    let (got_a, got_b) = std::thread::scope(|s| {
        let a = s.spawn(|| replay_tenant(&svc, "lubm", &lines_a));
        let b = s.spawn(|| replay_tenant(&svc, "swdf", &lines_b));
        (a.join().unwrap(), b.join().unwrap())
    });

    for (name, got, want) in [("lubm", &got_a, &reference[0]), ("swdf", &got_b, &reference[1])] {
        assert_eq!(got.len(), want.len());
        for (i, bits) in want {
            assert_eq!(
                got[i], *bits,
                "tenant {name} query {i}: concurrent multi-tenant estimate diverges from the sequential single-tenant server"
            );
        }
    }
}

/// An estimator that holds every forward for a fixed pause, so a tenant's
/// bounded queue can be saturated deterministically.
struct SlowEstimator(Duration);

impl CardinalityEstimator for SlowEstimator {
    fn name(&self) -> &str {
        "slow"
    }
    fn memory_bytes(&self) -> usize {
        0
    }
    fn estimate(&self, _query: &Query) -> f64 {
        std::thread::sleep(self.0);
        1.0
    }
    fn estimate_batch(&self, queries: &[Query]) -> Vec<f64> {
        std::thread::sleep(self.0);
        vec![1.0; queries.len()]
    }
}

/// A tenant at its admission quota sheds with `OVERLOADED` while its
/// neighbour, behind the same transport, keeps answering everything.
#[test]
fn quota_exhaustion_does_not_starve_the_neighbour_tenant() {
    let graph = Arc::new(small_lubm());
    let summary = Arc::new(GraphSummary::build(&graph));
    let svc = ServeBuilder::new()
        .batch(BatchConfig {
            window: Duration::from_millis(1),
            max_batch: 1,
            queue_depth: 256,
            workers: 1,
            obs: true,
        })
        .tenant(
            TenantSpec::new(
                "hot",
                Arc::clone(&graph),
                Arc::new(SlowEstimator(Duration::from_millis(20))),
            )
            .quota(2),
        )
        .tenant(TenantSpec::new("cool", Arc::clone(&graph), summary))
        .build()
        .unwrap();

    let line = sparql::format_query(&test_queries(&graph, QueryShape::Star, 2, 1)[0].query, &graph);
    let (tx_hot, rx_hot) = mpsc::channel::<Reply>();
    for i in 0..60 {
        svc.handle_line(&format!("EST hot h{i} {line}"), &tx_hot);
    }
    // While the hot tenant is drowning, the cool tenant must answer all.
    let (tx_cool, rx_cool) = mpsc::channel::<Reply>();
    for i in 0..30 {
        svc.handle_line(&format!("EST cool c{i} {line}"), &tx_cool);
    }
    let mut cool_ok = 0;
    for _ in 0..30 {
        match rx_cool.recv_timeout(Duration::from_secs(30)).unwrap() {
            Reply::Estimate { .. } => cool_ok += 1,
            other => panic!("cool tenant reply degraded by the hot tenant: {other:?}"),
        }
    }
    assert_eq!(cool_ok, 30);
    let (mut hot_ok, mut hot_shed) = (0u64, 0u64);
    for _ in 0..60 {
        match rx_hot.recv_timeout(Duration::from_secs(60)).unwrap() {
            Reply::Estimate { .. } => hot_ok += 1,
            Reply::Overloaded { .. } => hot_shed += 1,
            other => panic!("unexpected hot reply: {other:?}"),
        }
    }
    assert_eq!(hot_ok + hot_shed, 60);
    assert!(hot_shed > 0, "quota 2 under a 60-request burst must shed");
    let cool = svc.tenant_stats("cool").unwrap();
    assert_eq!(cool.shed, 0, "the neighbour tenant may never shed: {cool:?}");
    let hot = svc.tenant_stats("hot").unwrap();
    assert_eq!(
        hot.shed, hot_shed,
        "per-tenant stats attribute the shed to the hot tenant"
    );
}

/// A v1 transcript (no tenant tokens) replayed through a `ServeBuilder`
/// service is byte-identical — modulo the measured `us=` latency suffix —
/// to the same transcript through the deprecated pre-PR constructor.
#[test]
#[allow(deprecated)]
fn v1_transcript_replays_byte_identically_on_the_v2_server() {
    let graph = Arc::new(small_lubm());
    let summary = Arc::new(GraphSummary::build(&graph));
    let (_, lines) = tenant_workload(&graph);
    let mut input = String::new();
    for (i, line) in lines.iter().enumerate() {
        input.push_str(&format!("EST q{i} {line}\n"));
    }
    input.push_str("QUIT\n");

    // Deterministic reply prefix: everything before the timing suffix.
    let deterministic = |out: Vec<u8>| -> Vec<String> {
        let mut replies: Vec<String> = String::from_utf8(out)
            .unwrap()
            .lines()
            .map(|l| l.split(" us=").next().unwrap().to_string())
            .collect();
        replies.sort();
        replies
    };

    let legacy = EstimationService::new(Arc::clone(&graph), Arc::clone(&summary) as _, BatchConfig::default());
    let built = ServeBuilder::new()
        .batch(BatchConfig::default())
        .tenant(TenantSpec::new(DEFAULT_TENANT, Arc::clone(&graph), summary))
        .build()
        .unwrap();
    let old = deterministic(serve_stream(&legacy, input.as_bytes(), Vec::new()));
    let new = deterministic(serve_stream(&built, input.as_bytes(), Vec::new()));
    assert_eq!(old.len(), lines.len());
    assert_eq!(old, new, "v1 replay must be byte-identical across constructors");
}

/// The adapter retrains and swaps one tenant's models while live traffic on
/// the other tenant keeps flowing: zero dropped replies, zero sheds, and
/// the untouched tenant's framework stays exactly as built.
#[test]
fn adapter_swaps_one_tenant_under_live_traffic_on_the_other() {
    let cfg = narrow_config();
    let graph_a = Arc::new(small_lubm());
    let graph_b = Arc::new(small_swdf());
    let base_a = Arc::new(Lmkg::build(&graph_a, &cfg));
    let base_b = Arc::new(Lmkg::build(&graph_b, &cfg));
    let shift_cell = (QueryShape::Star, 3);
    assert!(!base_a.covers(shift_cell.0, shift_cell.1));

    let shifted: Vec<String> = test_queries(&graph_a, QueryShape::Star, 3, 12)
        .iter()
        .map(|lq| sparql::format_query(&lq.query, &graph_a))
        .collect();
    let steady: Vec<String> = test_queries(&graph_b, QueryShape::Star, 2, 12)
        .iter()
        .map(|lq| sparql::format_query(&lq.query, &graph_b))
        .collect();

    let mon_a: SharedMonitor = Arc::new(Mutex::new(WorkloadMonitor::new(64, &cfg.cells())));
    let mon_b: SharedMonitor = Arc::new(Mutex::new(WorkloadMonitor::new(64, &cfg.cells())));
    let svc = ServeBuilder::new()
        .batch(BatchConfig {
            window: Duration::from_millis(1),
            max_batch: 8,
            queue_depth: 8192,
            workers: 2,
            obs: true,
        })
        .tenant(
            TenantSpec::new(
                "a",
                Arc::clone(&graph_a),
                Arc::clone(&base_a) as lmkg_serve::SharedEstimator,
            )
            .observed(Arc::clone(&mon_a)),
        )
        .tenant(
            TenantSpec::new(
                "b",
                Arc::clone(&graph_b),
                Arc::clone(&base_b) as lmkg_serve::SharedEstimator,
            )
            .observed(Arc::clone(&mon_b)),
        )
        .build()
        .unwrap();
    let adapter = Adapter::start_multi(
        vec![
            TenantAdapterSpec {
                name: "a".into(),
                graph: Arc::clone(&graph_a),
                base: Arc::clone(&base_a),
                build_cfg: cfg.clone(),
                handle: svc.tenant_model("a").unwrap(),
                monitor: mon_a,
                stats: svc.tenant_serve_stats("a").unwrap(),
                store: None,
                memory_budget: None,
            },
            TenantAdapterSpec {
                name: "b".into(),
                graph: Arc::clone(&graph_b),
                base: Arc::clone(&base_b),
                build_cfg: cfg.clone(),
                handle: svc.tenant_model("b").unwrap(),
                monitor: mon_b,
                stats: svc.tenant_serve_stats("b").unwrap(),
                store: None,
                memory_budget: None,
            },
        ],
        AdapterConfig {
            interval: Duration::from_millis(50),
            window: 64,
            min_observed: 16,
            tv_threshold: 0.3,
            uncovered_threshold: 0.2,
            max_models: 8,
            max_new_per_cycle: 2,
        },
    );

    // Tenant b's live traffic runs on its own thread for the whole retrain.
    let stop = std::sync::atomic::AtomicBool::new(false);
    let (b_sent, b_ok) = std::thread::scope(|s| {
        let b_thread = s.spawn(|| {
            let (tx, rx) = mpsc::channel::<Reply>();
            let mut sent = 0usize;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                for line in &steady {
                    svc.handle_line(&format!("EST b s{sent} {line}"), &tx);
                    sent += 1;
                }
                std::thread::sleep(Duration::from_millis(10));
            }
            let mut ok = 0usize;
            for _ in 0..sent {
                match rx.recv_timeout(Duration::from_secs(60)).expect("b reply dropped") {
                    Reply::Estimate { .. } => ok += 1,
                    other => panic!("tenant b degraded during a's retrain: {other:?}"),
                }
            }
            (sent, ok)
        });

        // Shifted waves on tenant a until its adapter fires.
        let (tx_a, rx_a) = mpsc::channel::<Reply>();
        let mut sent_a = 0usize;
        let deadline = Instant::now() + Duration::from_secs(600);
        loop {
            for line in &shifted {
                svc.handle_line(&format!("EST a g{sent_a} {line}"), &tx_a);
                sent_a += 1;
            }
            if svc.tenant_stats("a").unwrap().retrains >= 1 {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "adapter never fired for tenant a: {:?}",
                svc.tenant_stats("a")
            );
            std::thread::sleep(Duration::from_millis(100));
        }
        for _ in 0..sent_a {
            match rx_a.recv_timeout(Duration::from_secs(60)).expect("a reply dropped") {
                Reply::Estimate { .. } => {}
                other => panic!("unexpected reply on tenant a: {other:?}"),
            }
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        b_thread.join().unwrap()
    });
    assert!(b_sent > 0);
    assert_eq!(b_ok, b_sent, "every tenant-b request must be answered");

    let stats_a = svc.tenant_stats("a").unwrap();
    assert!(stats_a.retrains >= 1 && stats_a.models_added >= 1, "a: {stats_a:?}");
    assert_eq!(stats_a.shed, 0, "a: {stats_a:?}");
    let stats_b = svc.tenant_stats("b").unwrap();
    assert_eq!(stats_b.retrains, 0, "b must not retrain: {stats_b:?}");
    assert_eq!(stats_b.models_added, 0, "b: {stats_b:?}");
    assert_eq!(stats_b.shed, 0, "b: {stats_b:?}");

    // The published frameworks: a grew by the shifted cell, b is untouched.
    let published_a = adapter.current_for("a").unwrap();
    assert!(published_a.covers(shift_cell.0, shift_cell.1));
    assert_eq!(published_a.model_count(), base_a.model_count() + 1);
    let published_b = adapter.current_for("b").unwrap();
    assert_eq!(published_b.model_count(), base_b.model_count());
    adapter.stop();
}

const TENANT_POOL: [&str; 4] = ["default", "lubm", "swdf_v2", "t-9"];
const ID_POOL: [&str; 4] = ["q1", "0", "req-42", "x_y.z"];
const SPARQL_POOL: [&str; 3] = [
    "SELECT * WHERE { ?x ?p ?y . }",
    "SELECT * WHERE { ?x :p ?y . ?y :q ?z . }",
    "SELECT ?a WHERE { ?a :knows ?b . ?b :knows ?c . ?c :knows ?a . }",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every v1 (no tenant token) and v2 (tenant token) request formats to a
    /// line that parses back to exactly the same request — the wire is a
    /// lossless round trip in both protocol generations.
    #[test]
    fn v1_and_v2_requests_round_trip_the_wire(
        t in 0usize..TENANT_POOL.len(),
        with_tenant in any::<bool>(),
        i in 0usize..ID_POOL.len(),
        s in 0usize..SPARQL_POOL.len(),
    ) {
        let tenant = with_tenant.then(|| TENANT_POOL[t].to_string());
        let id = ID_POOL[i].to_string();
        for req in [
            Request::Estimate { tenant: tenant.clone(), id: id.clone(), sparql: SPARQL_POOL[s].to_string() },
            Request::Stats { tenant: tenant.clone(), id: id.clone() },
            Request::Metrics { tenant: tenant.clone(), id: id.clone() },
            Request::Tenants { id: id.clone() },
        ] {
            let line = req.to_string();
            let back = Request::parse(&line).expect("formatted requests parse");
            prop_assert_eq!(back, req, "line {} did not round-trip", line);
        }
    }
}
