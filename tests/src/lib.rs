//! Shared helpers for the LMKG integration-test suite.

use lmkg::metrics::QErrorStats;
use lmkg::CardinalityEstimator;
use lmkg_data::workload::{self, WorkloadConfig};
use lmkg_data::{Dataset, LabeledQuery, Scale};
use lmkg_store::{KnowledgeGraph, QueryShape};

/// A small LUBM-like graph for fast integration tests.
pub fn small_lubm() -> KnowledgeGraph {
    Dataset::LubmLike.generate(Scale::Ci, 42)
}

/// A small SWDF-like graph (skewed / interconnected).
pub fn small_swdf() -> KnowledgeGraph {
    Dataset::SwdfLike.generate(Scale::Ci, 42)
}

/// A test workload of the given shape and size.
pub fn test_queries(graph: &KnowledgeGraph, shape: QueryShape, size: usize, count: usize) -> Vec<LabeledQuery> {
    let mut cfg = WorkloadConfig::test_default(shape, size, 1234);
    cfg.count = count;
    workload::generate(graph, &cfg)
}

/// Runs an estimator over labeled queries and aggregates q-errors.
pub fn evaluate(est: &dyn CardinalityEstimator, queries: &[LabeledQuery]) -> QErrorStats {
    let pairs: Vec<(f64, u64)> = queries
        .iter()
        .map(|lq| (est.estimate(&lq.query), lq.cardinality))
        .collect();
    QErrorStats::from_pairs(pairs).expect("non-empty workload")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_produce_usable_fixtures() {
        let g = small_lubm();
        assert!(g.num_triples() > 100);
        let qs = test_queries(&g, QueryShape::Star, 2, 50);
        assert!(qs.len() >= 30);
    }
}
